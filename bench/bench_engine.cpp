// RouteEngine throughput harness: scalar route() vs zero-allocation batch
// solving vs relative-permutation cache hits, per family, plus the
// end-to-end MCMP effect (packet generation through the engine must produce
// byte-identical paths — and therefore an identical SimResult — measurably
// faster than the legacy per-pair route_trace path).  Emits
// bench/baseline_engine.json for scripts/compare_bench.py regression gating.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <random>
#include <vector>

#include "json_out.hpp"
#include "networks/route_engine.hpp"
#include "networks/router.hpp"
#include "sim/mcmp.hpp"
#include "sim/workloads.hpp"
#include "topology/metrics.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct PairList {
  std::vector<std::uint64_t> src;
  std::vector<std::uint64_t> dst;
};

PairList random_pairs(const scg::NetworkSpec& net, std::size_t count,
                      std::uint64_t seed) {
  const std::uint64_t n = net.num_nodes();
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::uint64_t> pick(0, n - 1);
  PairList pairs;
  pairs.src.reserve(count);
  pairs.dst.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t s = pick(rng);
    std::uint64_t d = pick(rng);
    if (d == s) d = (d + 1) % n;
    pairs.src.push_back(s);
    pairs.dst.push_back(d);
  }
  return pairs;
}

/// One family: scalar vs batch (cache off — the allocation/precompute win
/// alone) vs cached (second pass over the same pairs, all hits).
void bench_family(const scg::NetworkSpec& net, std::size_t count,
                  benchjson::Json& json) {
  const PairList pairs = random_pairs(net, count, /*seed=*/42);
  const int k = net.k();

  // Scalar: the public allocating API, endpoints unranked per call (the
  // batch path unranks internally, so both sides pay it).
  std::uint64_t scalar_hops = 0;
  for (std::size_t i = 0; i < count; ++i) {  // warm-up pass
    scalar_hops += scg::route(net, scg::Permutation::unrank(k, pairs.src[i]),
                              scg::Permutation::unrank(k, pairs.dst[i]))
                       .size();
  }
  const Clock::time_point t_scalar = Clock::now();
  std::uint64_t scalar_hops2 = 0;
  for (std::size_t i = 0; i < count; ++i) {
    scalar_hops2 += scg::route(net, scg::Permutation::unrank(k, pairs.src[i]),
                               scg::Permutation::unrank(k, pairs.dst[i]))
                        .size();
  }
  const double scalar_s = seconds_since(t_scalar);

  // Batch, cache disabled: pure zero-allocation + precomputation win.
  const scg::RouteEngine raw(net,
                             scg::RouteEngineConfig{.cache_capacity = 0});
  scg::RouteBatch batch;
  raw.route_batch(pairs.src, pairs.dst, batch);  // warm the arenas
  const Clock::time_point t_batch = Clock::now();
  raw.route_batch(pairs.src, pairs.dst, batch);
  const double batch_s = seconds_since(t_batch);
  const std::uint64_t batch_hops = batch.total_length();

  // Cached: first pass fills the relative-permutation cache, second pass is
  // all hits.
  const scg::RouteEngine cached(net);
  cached.route_batch(pairs.src, pairs.dst, batch);
  const Clock::time_point t_cached = Clock::now();
  cached.route_batch(pairs.src, pairs.dst, batch);
  const double cached_s = seconds_since(t_cached);
  const scg::RouteCacheStats stats = cached.cache_stats();

  const double scalar_rps = static_cast<double>(count) / scalar_s;
  const double batch_rps = static_cast<double>(count) / batch_s;
  const double cached_rps = static_cast<double>(count) / cached_s;
  const bool hops_agree =
      scalar_hops == scalar_hops2 && scalar_hops == batch_hops;

  std::printf("%-18s k=%-2d pairs=%-6zu scalar=%-10.0f batch=%-10.0f "
              "cached=%-10.0f r/s  batch-x=%-5.2f cached-x=%-6.2f %s\n",
              net.name.c_str(), k, count, scalar_rps, batch_rps, cached_rps,
              batch_rps / scalar_rps, cached_rps / scalar_rps,
              hops_agree ? "" : "HOP MISMATCH!");

  json.row(benchjson::kv("name", net.name) + ", " +
           benchjson::kv("k", std::uint64_t(k)) + ", " +
           benchjson::kv("pairs", std::uint64_t(count)) + ", " +
           benchjson::kv("scalar_rps", scalar_rps) + ", " +
           benchjson::kv("batch_rps", batch_rps) + ", " +
           benchjson::kv("cached_rps", cached_rps) + ", " +
           benchjson::kv("batch_speedup", batch_rps / scalar_rps) + ", " +
           benchjson::kv("cached_speedup", cached_rps / scalar_rps) + ", " +
           benchjson::kv("total_hops", batch_hops) + ", " +
           benchjson::kv("cache_hits", stats.hits) + ", " +
           benchjson::kv("hops_agree", std::uint64_t(hops_agree)));
}

/// Flow traffic: `flows` distinct (src, dst) pairs, each carrying
/// `per_flow` packets, interleaved.  This is the standard flow-based MCMP
/// workload, and it is where the batch API structurally beats the scalar
/// one: route_batch dedups repeated relative permutations through the
/// cache, while the stateless route() re-solves every packet.
PairList flow_pairs(const scg::NetworkSpec& net, std::size_t flows,
                    std::size_t per_flow, std::uint64_t seed) {
  const PairList heads = random_pairs(net, flows, seed);
  std::vector<std::size_t> order(flows * per_flow);
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i % flows;
  std::mt19937_64 rng(seed ^ 0x5bd1e995u);
  std::shuffle(order.begin(), order.end(), rng);
  PairList pairs;
  pairs.src.reserve(order.size());
  pairs.dst.reserve(order.size());
  for (const std::size_t f : order) {
    pairs.src.push_back(heads.src[f]);
    pairs.dst.push_back(heads.dst[f]);
  }
  return pairs;
}

/// One family under flow traffic: the as-shipped batch API (default
/// config, cold cache at the start of the timed pass) against scalar
/// route() over the identical packet list.
void bench_family_flows(const scg::NetworkSpec& net, std::size_t flows,
                        std::size_t per_flow, benchjson::Json& json) {
  const PairList pairs = flow_pairs(net, flows, per_flow, /*seed=*/42);
  const std::size_t count = pairs.src.size();
  const int k = net.k();

  std::uint64_t scalar_hops = 0;
  for (std::size_t i = 0; i < count; ++i) {  // warm-up pass
    scalar_hops += scg::route(net, scg::Permutation::unrank(k, pairs.src[i]),
                              scg::Permutation::unrank(k, pairs.dst[i]))
                       .size();
  }
  const Clock::time_point t_scalar = Clock::now();
  std::uint64_t scalar_hops2 = 0;
  for (std::size_t i = 0; i < count; ++i) {
    scalar_hops2 += scg::route(net, scg::Permutation::unrank(k, pairs.src[i]),
                               scg::Permutation::unrank(k, pairs.dst[i]))
                        .size();
  }
  const double scalar_s = seconds_since(t_scalar);

  // Default engine, cache cold: the timed pass pays every miss itself.
  const scg::RouteEngine engine(net);
  scg::RouteBatch batch;
  const Clock::time_point t_batch = Clock::now();
  engine.route_batch(pairs.src, pairs.dst, batch);
  const double batch_s = seconds_since(t_batch);
  const std::uint64_t batch_hops = batch.total_length();
  const scg::RouteCacheStats stats = engine.cache_stats();

  const double scalar_rps = static_cast<double>(count) / scalar_s;
  const double batch_rps = static_cast<double>(count) / batch_s;
  const bool hops_agree =
      scalar_hops == scalar_hops2 && scalar_hops == batch_hops;

  std::printf("%-18s k=%-2d flows=%-5zu pkts=%-6zu scalar=%-10.0f "
              "batch=%-10.0f r/s  batch-x=%-5.2f hits=%llu %s\n",
              net.name.c_str(), k, flows, count, scalar_rps, batch_rps,
              batch_rps / scalar_rps,
              static_cast<unsigned long long>(stats.hits),
              hops_agree ? "" : "HOP MISMATCH!");

  json.row(benchjson::kv("name", net.name) + ", " +
           benchjson::kv("k", std::uint64_t(k)) + ", " +
           benchjson::kv("flows", std::uint64_t(flows)) + ", " +
           benchjson::kv("pairs", std::uint64_t(count)) + ", " +
           benchjson::kv("scalar_rps", scalar_rps) + ", " +
           benchjson::kv("batch_rps", batch_rps) + ", " +
           benchjson::kv("batch_speedup", batch_rps / scalar_rps) + ", " +
           benchjson::kv("total_hops", batch_hops) + ", " +
           benchjson::kv("cache_hits", stats.hits) + ", " +
           benchjson::kv("hops_agree", std::uint64_t(hops_agree)));
}

/// Thread sweep over one family (cache off, so the scaling is the solver
/// fan-out, not cache luck).
void bench_threads(const scg::NetworkSpec& net, std::size_t count,
                   benchjson::Json& json) {
  const PairList pairs = random_pairs(net, count, /*seed=*/42);
  const scg::RouteEngine raw(net,
                             scg::RouteEngineConfig{.cache_capacity = 0});
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    scg::ThreadPool pool(threads);
    scg::RouteBatch batch;
    raw.route_batch(pairs.src, pairs.dst, batch, &pool);  // warm
    const Clock::time_point t0 = Clock::now();
    raw.route_batch(pairs.src, pairs.dst, batch, &pool);
    const double rps = static_cast<double>(count) / seconds_since(t0);
    std::printf("%-18s threads=%zu batch=%-10.0f r/s\n", net.name.c_str(),
                threads, rps);
    json.row(benchjson::kv("name", net.name) + ", " +
             benchjson::kv("threads", std::uint64_t(threads)) + ", " +
             benchjson::kv("batch_rps", rps));
  }
}

/// Legacy packet for one pair (the pre-engine workloads.cpp path): one
/// route_trace, states ranked into the path.
scg::SimPacket legacy_packet(const scg::NetworkSpec& net, std::uint64_t s,
                             std::uint64_t d) {
  scg::SimPacket p;
  p.src = s;
  p.dst = d;
  const scg::GameTrace trace =
      scg::route_trace(net, scg::Permutation::unrank(net.k(), s),
                       scg::Permutation::unrank(net.k(), d));
  p.path.reserve(trace.states.size());
  for (const scg::Permutation& state : trace.states) {
    p.path.push_back(static_cast<std::uint32_t>(state.rank()));
  }
  return p;
}

std::vector<scg::SimPacket> legacy_total_exchange(const scg::NetworkSpec& net) {
  const std::uint64_t n = net.num_nodes();
  std::vector<scg::SimPacket> packets;
  packets.reserve(n * (n - 1));
  for (std::uint64_t s = 0; s < n; ++s) {
    for (std::uint64_t d = 0; d < n; ++d) {
      if (s != d) packets.push_back(legacy_packet(net, s, d));
    }
  }
  return packets;
}

std::vector<scg::SimPacket> legacy_random_traffic(const scg::NetworkSpec& net,
                                                  int per_node,
                                                  std::uint64_t seed) {
  const std::uint64_t n = net.num_nodes();
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::uint64_t> pick(0, n - 1);
  std::vector<scg::SimPacket> packets;
  packets.reserve(n * static_cast<std::uint64_t>(per_node));
  for (std::uint64_t s = 0; s < n; ++s) {
    for (int i = 0; i < per_node; ++i) {
      std::uint64_t d = pick(rng);
      if (d == s) d = (d + 1) % n;
      packets.push_back(legacy_packet(net, s, d));
    }
  }
  return packets;
}

scg::SimResult run_sim(const scg::NetworkSpec& net,
                       std::vector<scg::SimPacket> packets) {
  const scg::Graph g = scg::materialize(net);
  scg::SimConfig cfg;
  cfg.onchip_cycles = 1;
  cfg.offchip_cycles = std::max(1, net.intercluster_degree());
  return scg::simulate_mcmp(
      g,
      [&](std::int32_t tag) {
        return !scg::is_nucleus(
            net.generators[static_cast<std::size_t>(tag)].kind);
      },
      std::move(packets), cfg);
}

bool same_result(const scg::SimResult& a, const scg::SimResult& b) {
  return a.completion_cycles == b.completion_cycles &&
         a.avg_latency == b.avg_latency && a.packets == b.packets &&
         a.total_hops == b.total_hops && a.offchip_hops == b.offchip_hops &&
         a.max_link_busy == b.max_link_busy;
}

template <typename LegacyGen, typename EngineGen>
void bench_mcmp(const scg::NetworkSpec& net, const char* workload,
                LegacyGen&& legacy_gen, EngineGen&& engine_gen,
                benchjson::Json& json) {
  const Clock::time_point t_legacy = Clock::now();
  const std::vector<scg::SimPacket> legacy = legacy_gen();
  const double legacy_s = seconds_since(t_legacy);

  const Clock::time_point t_engine = Clock::now();
  const std::vector<scg::SimPacket> batched = engine_gen();
  const double engine_s = seconds_since(t_engine);

  bool paths_identical = legacy.size() == batched.size();
  for (std::size_t i = 0; paths_identical && i < legacy.size(); ++i) {
    paths_identical = legacy[i].src == batched[i].src &&
                      legacy[i].dst == batched[i].dst &&
                      legacy[i].path == batched[i].path;
  }
  const scg::SimResult legacy_r = run_sim(net, legacy);
  const scg::SimResult batched_r = run_sim(net, batched);
  const bool results_identical = same_result(legacy_r, batched_r);

  std::printf("%-10s %-5s legacy-gen=%.4fs engine-gen=%.4fs (%.2fx)  "
              "paths-identical=%s  sim-identical=%s cycles=%llu\n",
              net.name.c_str(), workload, legacy_s, engine_s,
              legacy_s / engine_s, paths_identical ? "yes" : "NO",
              results_identical ? "yes" : "NO",
              static_cast<unsigned long long>(batched_r.completion_cycles));

  json.row(benchjson::kv("name", net.name) + ", " +
           benchjson::kv("workload", std::string(workload)) + ", " +
           benchjson::kv("packets", std::uint64_t(batched.size())) + ", " +
           benchjson::kv("legacy_gen_s", legacy_s) + ", " +
           benchjson::kv("engine_gen_s", engine_s) + ", " +
           benchjson::kv("gen_speedup", legacy_s / engine_s) + ", " +
           benchjson::kv("paths_identical", std::uint64_t(paths_identical)) +
           ", " +
           benchjson::kv("sim_identical", std::uint64_t(results_identical)) +
           ", " + benchjson::kv("completion_cycles",
                                batched_r.completion_cycles));
}

}  // namespace

int main() {
  benchjson::Json json;

  std::printf("=== RouteEngine throughput: scalar vs batch vs cached ===\n");
  json.begin_array("throughput");
  bench_family(scg::make_star_graph(7), 20000, json);
  bench_family(scg::make_macro_star(2, 3), 20000, json);
  bench_family(scg::make_macro_star(3, 2), 20000, json);
  bench_family(scg::make_complete_rotation_star(3, 2), 20000, json);
  bench_family(scg::make_macro_rotator(3, 2), 20000, json);
  bench_family(scg::make_macro_is(3, 2), 20000, json);
  bench_family(scg::make_rotation_is(3, 2), 20000, json);
  bench_family(scg::make_insertion_selection(7), 20000, json);
  bench_family(scg::make_rotator_graph(7), 20000, json);
  bench_family(scg::make_bubble_sort_graph(7), 20000, json);
  bench_family(scg::make_transposition_network(7), 20000, json);
  // k = 9 families: the recursive macro-star is where precomputed nucleus
  // expansions pay (the scalar router re-derives them every call).
  bench_family(scg::make_recursive_macro_star(2, 2, 2), 10000, json);
  bench_family(scg::make_recursive_macro_star(2, 2, 3), 5000, json);
  bench_family(scg::make_complete_rotation_star(4, 2), 10000, json);
  json.end_array();

  std::printf("\n=== Flow traffic: as-shipped batch API vs scalar ===\n");
  json.begin_array("flow_throughput");
  bench_family_flows(scg::make_macro_star(3, 2), 2000, 10, json);
  bench_family_flows(scg::make_complete_rotation_star(4, 2), 2000, 10, json);
  bench_family_flows(scg::make_recursive_macro_star(2, 2, 2), 2000, 10, json);
  json.end_array();

  std::printf("\n=== Batch thread sweep (cache off) ===\n");
  json.begin_array("threads");
  bench_threads(scg::make_macro_star(3, 2), 20000, json);
  json.end_array();

  std::printf("\n=== End-to-end MCMP: legacy vs engine packet generation ===\n");
  json.begin_array("mcmp");
  {
    // Total exchange is the cache's best case: N(N-1) packets share only
    // N-1 relative displacements.
    const scg::NetworkSpec ms22 = scg::make_macro_star(2, 2);
    bench_mcmp(
        ms22, "TE", [&] { return legacy_total_exchange(ms22); },
        [&] { return scg::total_exchange_packets(ms22); }, json);
    const scg::NetworkSpec ms51 = scg::make_macro_star(5, 1);
    bench_mcmp(
        ms51, "rand", [&] { return legacy_random_traffic(ms51, 8, 7); },
        [&] { return scg::random_traffic_packets(ms51, 8, 7); }, json);
  }
  json.end_array();

  json.finish("bench/baseline_engine.json");
  return 0;
}

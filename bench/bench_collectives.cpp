// Conclusions-section claims: MNB and broadcast round counts on super
// Cayley graphs vs star graphs and hypercubes, under the single-port and
// all-port models, against the universal lower bounds.
#include <cstdio>

#include "collectives/collectives.hpp"
#include "topology/baselines.hpp"
#include "topology/metrics.hpp"

namespace {

void report_cayley(const scg::NetworkSpec& net) {
  const scg::Graph g = scg::materialize(net);
  const scg::DistanceStats s = scg::network_distance_stats(net, false);
  const std::uint64_t root = scg::Permutation::identity(net.k()).rank();
  const scg::CollectiveResult bc1 = scg::broadcast_single_port(g, root);
  const scg::CollectiveResult bca = scg::broadcast_all_port(g, root);
  const scg::CollectiveResult m1 = scg::mnb_single_port(g);
  const scg::CollectiveResult ma = scg::mnb_all_port(g);
  std::printf("%-20s N=%-6llu deg=%-2d | bcast 1port %3d (lb %2d)  "
              "allport %2d (lb %2d) | MNB 1port %4d (lb %4d)  allport %3d (lb %3d)\n",
              net.name.c_str(),
              static_cast<unsigned long long>(g.num_nodes()), net.degree(),
              bc1.rounds, scg::broadcast_single_port_lower_bound(g.num_nodes()),
              bca.rounds, s.eccentricity, m1.rounds,
              scg::mnb_single_port_lower_bound(g.num_nodes()), ma.rounds,
              scg::mnb_all_port_lower_bound(g.num_nodes(), net.degree(),
                                            s.eccentricity));
}

void report_graph(const scg::Graph& g, const char* name, int degree,
                  int diameter) {
  const scg::CollectiveResult bc1 = scg::broadcast_single_port(g, 0);
  const scg::CollectiveResult bca = scg::broadcast_all_port(g, 0);
  const scg::CollectiveResult m1 = scg::mnb_single_port(g);
  const scg::CollectiveResult ma = scg::mnb_all_port(g);
  std::printf("%-20s N=%-6llu deg=%-2d | bcast 1port %3d (lb %2d)  "
              "allport %2d (lb %2d) | MNB 1port %4d (lb %4d)  allport %3d (lb %3d)\n",
              name, static_cast<unsigned long long>(g.num_nodes()), degree,
              bc1.rounds, scg::broadcast_single_port_lower_bound(g.num_nodes()),
              bca.rounds, diameter, m1.rounds,
              scg::mnb_single_port_lower_bound(g.num_nodes()), ma.rounds,
              scg::mnb_all_port_lower_bound(g.num_nodes(), degree, diameter));
}

}  // namespace

int main() {
  std::printf("=== Collectives: rounds vs model lower bounds ===\n");
  report_cayley(scg::make_macro_star(2, 2));
  report_cayley(scg::make_complete_rotation_star(2, 2));
  report_cayley(scg::make_macro_is(2, 2));
  report_cayley(scg::make_star_graph(5));
  report_graph(scg::make_hypercube(7), "hypercube(7)", 7, 7);
  report_graph(scg::make_torus_2d(11, 11), "torus 11x11", 4, 10);
  std::printf("\n--- a larger instance (N = 720) ---\n");
  report_cayley(scg::make_macro_star(5, 1));
  report_cayley(scg::make_complete_rotation_star(5, 1));
  report_cayley(scg::make_star_graph(6));
  std::printf("\n--- total exchange (all-port rounds) and scatter, N ~ 120 ---\n");
  {
    struct Entry {
      scg::NetworkSpec net;
    };
    for (const scg::NetworkSpec& net :
         {scg::make_macro_star(2, 2), scg::make_complete_rotation_star(2, 2),
          scg::make_macro_is(2, 2), scg::make_star_graph(5)}) {
      const scg::Graph g = scg::materialize(net);
      const scg::DistanceStats s = scg::network_distance_stats(net, false);
      const scg::CollectiveResult te = scg::te_all_port(g);
      const scg::CollectiveResult sc = scg::scatter_single_port(
          g, scg::Permutation::identity(net.k()).rank());
      std::printf("%-20s TE allport %4d rounds (lb %4d) | scatter 1port %4d "
                  "rounds (lb %d)\n",
                  net.name.c_str(), te.rounds,
                  scg::te_all_port_lower_bound(g.num_nodes(), net.degree(),
                                               s.average),
                  sc.rounds,
                  scg::scatter_single_port_lower_bound(g.num_nodes()));
    }
    const scg::Graph hc = scg::make_hypercube(7);
    const scg::DistanceStats hs = scg::graph_distance_stats(hc, 0);
    const scg::CollectiveResult te = scg::te_all_port(hc);
    const scg::CollectiveResult sc = scg::scatter_single_port(hc, 0);
    std::printf("%-20s TE allport %4d rounds (lb %4d) | scatter 1port %4d "
                "rounds (lb %d)\n",
                "hypercube(7)", te.rounds,
                scg::te_all_port_lower_bound(128, 7, hs.average), sc.rounds,
                scg::scatter_single_port_lower_bound(128));
  }

  std::printf(
      "\nExpectation (paper/conclusions): super Cayley graphs execute MNB\n"
      "and TE within a small constant of the all-port bandwidth bounds,\n"
      "like star graphs, while offering much lower degree than hypercubes.\n");
  return 0;
}

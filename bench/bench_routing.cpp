// Routing-quality harness (Section 2 algorithms as routers): compares the
// game-solver path lengths against the exact BFS distances, per network, and
// quantifies the gain of the rotation color-offset search (Figure 3's
// insight).
#include <cstdio>
#include <random>

#include "analysis/sweeps.hpp"
#include "networks/router.hpp"
#include "topology/metrics.hpp"

namespace {

void report_optimality(const scg::NetworkSpec& net) {
  // Exact distances from the identity; the solver routes every node to the
  // identity, so stretch = solver_steps / bfs_distance per source.
  const scg::CayleyView view{&net};
  const std::uint64_t src = scg::Permutation::identity(net.k()).rank();
  // BFS towards the identity: for directed graphs distances to the identity
  // come from the reverse view.
  std::vector<std::uint16_t> dist;
  if (net.directed) {
    const scg::ReverseCayleyView rview(net);
    dist = scg::bfs_distances(rview, src);
  } else {
    dist = scg::bfs_distances(view, src);
  }
  const scg::Permutation target = scg::Permutation::identity(net.k());
  double stretch_sum = 0.0;
  double stretch_max = 0.0;
  std::uint64_t optimal = 0;
  std::uint64_t count = 0;
  for (std::uint64_t r = 0; r < net.num_nodes(); ++r) {
    if (r == src) continue;
    const scg::Permutation u = scg::Permutation::unrank(net.k(), r);
    const int steps = scg::route_length(net, u, target);
    const double stretch = static_cast<double>(steps) / dist[r];
    stretch_sum += stretch;
    stretch_max = std::max(stretch_max, stretch);
    if (steps == dist[r]) ++optimal;
    ++count;
  }
  std::printf("%-20s N=%-6llu avg-stretch=%-6.3f max-stretch=%-6.2f "
              "optimal-routes=%.1f%%\n",
              net.name.c_str(), static_cast<unsigned long long>(net.num_nodes()),
              stretch_sum / count, stretch_max, 100.0 * optimal / count);
}

void report_offset_gain(int l, int n) {
  // Fixed color designation (offset 0) vs best-of-all-offsets, over all
  // sources of the complete-rotation insertion game (Figures 2 vs 3).
  const int k = n * l + 1;
  std::uint64_t fixed_total = 0;
  std::uint64_t best_total = 0;
  int fixed_worst = 0;
  int best_worst = 0;
  for (std::uint64_t r = 0; r < scg::factorial(k); ++r) {
    const scg::Permutation u = scg::Permutation::unrank(k, r);
    const int fixed = static_cast<int>(
        scg::solve_insertion_game_with_offset(
            u, l, n, scg::BoxMoveStyle::kCompleteRotation, 0)
            .size());
    const int best = static_cast<int>(
        scg::solve_insertion_game(u, l, n, scg::BoxMoveStyle::kCompleteRotation)
            .size());
    fixed_total += fixed;
    best_total += best;
    fixed_worst = std::max(fixed_worst, fixed);
    best_worst = std::max(best_worst, best);
  }
  const double nperm = static_cast<double>(scg::factorial(k));
  std::printf("complete-rotation insertion game l=%d n=%d: fixed-offset "
              "avg=%.2f worst=%d;  best-offset avg=%.2f worst=%d\n",
              l, n, fixed_total / nperm, fixed_worst, best_total / nperm,
              best_worst);
}

}  // namespace

int main() {
  std::printf("=== Router optimality: solver path length vs BFS distance ===\n");
  report_optimality(scg::make_star_graph(7));
  report_optimality(scg::make_macro_star(2, 3));
  report_optimality(scg::make_macro_star(3, 2));
  report_optimality(scg::make_complete_rotation_star(3, 2));
  report_optimality(scg::make_macro_rotator(3, 2));
  report_optimality(scg::make_macro_is(3, 2));
  report_optimality(scg::make_rotation_is(3, 2));
  report_optimality(scg::make_insertion_selection(7));
  report_optimality(scg::make_rotator_graph(7));
  report_optimality(scg::make_bubble_sort_graph(7));     // optimal by design
  report_optimality(scg::make_transposition_network(7)); // optimal by design

  std::printf("\n=== Figure 3 insight: color-offset search gain ===\n");
  report_offset_gain(3, 2);
  report_offset_gain(2, 3);
  return 0;
}

// Routing-quality harness (Section 2 algorithms as routers): compares the
// game-solver path lengths against the exact BFS distances, per network, and
// quantifies the gain of the rotation color-offset search (Figure 3's
// insight).
#include <cstdio>
#include <random>

#include "analysis/oracle_audit.hpp"
#include "analysis/sweeps.hpp"
#include "networks/router.hpp"
#include "oracle/oracle.hpp"
#include "topology/metrics.hpp"

namespace {

/// Families up to this many nodes additionally get a full distance-oracle
/// build and an exact optimality audit (table + audit cost one retrograde
/// BFS plus one routed sweep — cheap at these sizes).
constexpr std::uint64_t kOracleAuditLimit = 1'000'000;

void report_optimality(const scg::NetworkSpec& net) {
  // Stretch = solver_steps / bfs_distance per source, routed to the identity.
  const scg::StretchSweep s = scg::measure_stretch(net);
  std::printf("%-20s N=%-6llu avg-stretch=%-6.3f max-stretch=%-6.2f "
              "optimal-routes=%.1f%%\n",
              net.name.c_str(), static_cast<unsigned long long>(net.num_nodes()),
              s.avg_stretch, s.max_stretch, 100.0 * s.optimal_fraction);
  if (net.num_nodes() > kOracleAuditLimit) return;
  // Oracle-exact cross-check: the same optimality numbers derived from the
  // mod-3 distance table, plus the worst absolute gap from optimal play.
  // Any disagreement with measure_stretch means a distance bug.
  const scg::DistanceOracle oracle = scg::DistanceOracle::build(net);
  const scg::OptimalityAudit a = scg::audit_route_optimality(net, oracle);
  const bool agree = a.optimal_fraction() == s.optimal_fraction &&
                     a.max_stretch == s.max_stretch;
  std::printf("  oracle-exact:      avg-stretch=%-6.3f max-stretch=%-6.2f "
              "optimal-routes=%.1f%% max-gap=%d hops  agree=%s\n",
              a.avg_stretch, a.max_stretch, 100.0 * a.optimal_fraction(),
              a.max_gap, agree ? "yes" : "NO (distance bug!)");
}

void report_offset_gain(int l, int n) {
  // Fixed color designation (offset 0) vs best-of-all-offsets, over all
  // sources of the complete-rotation insertion game (Figures 2 vs 3).
  const int k = n * l + 1;
  std::uint64_t fixed_total = 0;
  std::uint64_t best_total = 0;
  int fixed_worst = 0;
  int best_worst = 0;
  for (std::uint64_t r = 0; r < scg::factorial(k); ++r) {
    const scg::Permutation u = scg::Permutation::unrank(k, r);
    const int fixed = static_cast<int>(
        scg::solve_insertion_game_with_offset(
            u, l, n, scg::BoxMoveStyle::kCompleteRotation, 0)
            .size());
    const int best = static_cast<int>(
        scg::solve_insertion_game(u, l, n, scg::BoxMoveStyle::kCompleteRotation)
            .size());
    fixed_total += fixed;
    best_total += best;
    fixed_worst = std::max(fixed_worst, fixed);
    best_worst = std::max(best_worst, best);
  }
  const double nperm = static_cast<double>(scg::factorial(k));
  std::printf("complete-rotation insertion game l=%d n=%d: fixed-offset "
              "avg=%.2f worst=%d;  best-offset avg=%.2f worst=%d\n",
              l, n, fixed_total / nperm, fixed_worst, best_total / nperm,
              best_worst);
}

}  // namespace

int main() {
  std::printf("=== Router optimality: solver path length vs BFS distance ===\n");
  report_optimality(scg::make_star_graph(7));
  report_optimality(scg::make_macro_star(2, 3));
  report_optimality(scg::make_macro_star(3, 2));
  report_optimality(scg::make_complete_rotation_star(3, 2));
  report_optimality(scg::make_macro_rotator(3, 2));
  report_optimality(scg::make_macro_is(3, 2));
  report_optimality(scg::make_rotation_is(3, 2));
  report_optimality(scg::make_insertion_selection(7));
  report_optimality(scg::make_rotator_graph(7));
  report_optimality(scg::make_bubble_sort_graph(7));     // optimal by design
  report_optimality(scg::make_transposition_network(7)); // optimal by design

  std::printf("\n=== Figure 3 insight: color-offset search gain ===\n");
  report_offset_gain(3, 2);
  report_offset_gain(2, 3);
  return 0;
}

// Routing-quality harness (Section 2 algorithms as routers): compares the
// game-solver path lengths against the exact BFS distances, per network, and
// quantifies the gain of the rotation color-offset search (Figure 3's
// insight).
#include <cstdio>
#include <random>

#include "analysis/sweeps.hpp"
#include "networks/router.hpp"
#include "topology/metrics.hpp"

namespace {

void report_optimality(const scg::NetworkSpec& net) {
  // Stretch = solver_steps / bfs_distance per source, routed to the identity.
  const scg::StretchSweep s = scg::measure_stretch(net);
  std::printf("%-20s N=%-6llu avg-stretch=%-6.3f max-stretch=%-6.2f "
              "optimal-routes=%.1f%%\n",
              net.name.c_str(), static_cast<unsigned long long>(net.num_nodes()),
              s.avg_stretch, s.max_stretch, 100.0 * s.optimal_fraction);
}

void report_offset_gain(int l, int n) {
  // Fixed color designation (offset 0) vs best-of-all-offsets, over all
  // sources of the complete-rotation insertion game (Figures 2 vs 3).
  const int k = n * l + 1;
  std::uint64_t fixed_total = 0;
  std::uint64_t best_total = 0;
  int fixed_worst = 0;
  int best_worst = 0;
  for (std::uint64_t r = 0; r < scg::factorial(k); ++r) {
    const scg::Permutation u = scg::Permutation::unrank(k, r);
    const int fixed = static_cast<int>(
        scg::solve_insertion_game_with_offset(
            u, l, n, scg::BoxMoveStyle::kCompleteRotation, 0)
            .size());
    const int best = static_cast<int>(
        scg::solve_insertion_game(u, l, n, scg::BoxMoveStyle::kCompleteRotation)
            .size());
    fixed_total += fixed;
    best_total += best;
    fixed_worst = std::max(fixed_worst, fixed);
    best_worst = std::max(best_worst, best);
  }
  const double nperm = static_cast<double>(scg::factorial(k));
  std::printf("complete-rotation insertion game l=%d n=%d: fixed-offset "
              "avg=%.2f worst=%d;  best-offset avg=%.2f worst=%d\n",
              l, n, fixed_total / nperm, fixed_worst, best_total / nperm,
              best_worst);
}

}  // namespace

int main() {
  std::printf("=== Router optimality: solver path length vs BFS distance ===\n");
  report_optimality(scg::make_star_graph(7));
  report_optimality(scg::make_macro_star(2, 3));
  report_optimality(scg::make_macro_star(3, 2));
  report_optimality(scg::make_complete_rotation_star(3, 2));
  report_optimality(scg::make_macro_rotator(3, 2));
  report_optimality(scg::make_macro_is(3, 2));
  report_optimality(scg::make_rotation_is(3, 2));
  report_optimality(scg::make_insertion_selection(7));
  report_optimality(scg::make_rotator_graph(7));
  report_optimality(scg::make_bubble_sort_graph(7));     // optimal by design
  report_optimality(scg::make_transposition_network(7)); // optimal by design

  std::printf("\n=== Figure 3 insight: color-offset search gain ===\n");
  report_offset_gain(3, 2);
  report_offset_gain(2, 3);
  return 0;
}

// Section 4.3's pointer to super-index-permutation graphs: when balls of a
// box share a number, the state graph collapses to the box-level structure
// and its diameter tracks the super Cayley graph's *intercluster* diameter
// rather than the full diameter — the property the paper invokes for
// optimal intercluster metrics with clusters larger than one nucleus.
#include <cstdio>

#include "ipg/ipg_network.hpp"
#include "topology/metrics.hpp"

namespace {

void compare(const scg::NetworkSpec& cayley, const scg::IpgSpec& ipg) {
  const scg::DistanceStats full = scg::network_distance_stats(cayley, false);
  const scg::DistanceStats ic = scg::intercluster_distance_stats(cayley);
  const scg::DistanceStats sip = scg::ipg_distance_stats(ipg);
  std::printf("%-14s N=%-8llu diam=%-3d ic-diam=%-3d | %-14s N=%-6llu "
              "goal-ecc=%-3d goal-avg=%.2f\n",
              cayley.name.c_str(),
              static_cast<unsigned long long>(cayley.num_nodes()),
              full.eccentricity, ic.eccentricity, ipg.name.c_str(),
              static_cast<unsigned long long>(ipg.num_nodes()),
              sip.eccentricity, sip.average);
}

void solver_sweep(const scg::IpgSpec& net) {
  int worst = 0;
  double total = 0;
  for (std::uint64_t r = 0; r < net.num_nodes(); ++r) {
    const scg::IndexPermutation start =
        scg::IndexPermutation::unrank(net.shape, r);
    const int steps = static_cast<int>(scg::solve_ipg(net, start).size());
    worst = std::max(worst, steps);
    total += steps;
  }
  std::printf("%-14s color-level solver: worst=%d avg=%.2f over %llu states\n",
              net.name.c_str(), worst, total / net.num_nodes(),
              static_cast<unsigned long long>(net.num_nodes()));
}

}  // namespace

int main() {
  std::printf("=== Super-index-permutation graphs vs super Cayley graphs ===\n");
  compare(scg::make_macro_star(3, 2), scg::make_super_ip_star(3, 2));
  compare(scg::make_macro_star(2, 3), scg::make_super_ip_star(2, 3));
  compare(scg::make_complete_rotation_star(3, 2),
          scg::make_super_ip_complete_rotation(3, 2));
  compare(scg::make_macro_star(4, 2), scg::make_super_ip_star(4, 2));
  compare(scg::make_macro_star(3, 3), scg::make_super_ip_star(3, 3));

  std::printf("\n--- color-level game solver (exhaustive) ---\n");
  solver_sweep(scg::make_super_ip_star(3, 2));
  solver_sweep(scg::make_super_ip_complete_rotation(3, 2));
  solver_sweep(scg::make_super_ip_star(2, 3));

  std::printf(
      "\nExpectation (paper Section 4.3): the IPG's diameter sits between\n"
      "the super Cayley graph's intercluster diameter and its full\n"
      "diameter, and far below the latter — identical balls shed the\n"
      "within-nucleus sorting cost entirely.\n");
  return 0;
}

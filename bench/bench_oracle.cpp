// Distance-oracle evaluation: full-table construction throughput (parallel
// retrograde BFS over all k! states), point-query latency (mod-3 descent),
// exact whole-graph statistics, and oracle-exact optimality audits of the
// game routers.
//
// Usage: bench_oracle [output.json]
// Prints a human-readable report; with an argument additionally writes the
// same numbers as machine-readable JSON (see bench/baseline_oracle.json).
#include <chrono>
#include <cstdio>
#include <random>
#include <string>

#include "analysis/oracle_audit.hpp"
#include "oracle/oracle.hpp"

#include "json_out.hpp"

namespace {

using benchjson::Json;
using benchjson::kv;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

void build_section(Json& json) {
  std::printf("=== full-table construction: parallel retrograde BFS ===\n");
  json.begin_array("build");
  for (const scg::NetworkSpec& net :
       {scg::make_macro_star(2, 4),          // k=9, undirected
        scg::make_star_graph(9),             // k=9 baseline
        scg::make_insertion_selection(9),    // k=9, degree 16
        scg::make_macro_rotator(2, 4),       // k=9, directed
        scg::make_complete_rotation_star(3, 3)}) {  // k=10, 3.6M states
    const auto t0 = Clock::now();
    const scg::DistanceOracle oracle = scg::DistanceOracle::build(net);
    const double secs = seconds_since(t0);
    const double rate = static_cast<double>(oracle.num_states()) / secs;
    std::printf("%-20s N=%-8llu deg=%-2d build=%6.3fs  %8.2fM states/s  "
                "diameter=%-3d avg=%.3f\n",
                net.name.c_str(),
                static_cast<unsigned long long>(oracle.num_states()),
                net.degree(), secs, rate / 1e6, oracle.diameter(),
                oracle.average_distance());
    json.row(kv("name", net.name) + ", " + kv("states", oracle.num_states()) +
             ", " + kv("degree", static_cast<std::uint64_t>(net.degree())) +
             ", " + kv("build_seconds", secs) + ", " +
             kv("states_per_second", rate) + ", " +
             kv("diameter", static_cast<std::uint64_t>(oracle.diameter())) +
             ", " + kv("avg_distance", oracle.average_distance()));
  }
  json.end_array();
}

void query_section(Json& json) {
  std::printf("\n=== point-query latency: exact_distance by mod-3 descent ===\n");
  json.begin_array("query");
  for (const scg::NetworkSpec& net :
       {scg::make_star_graph(9), scg::make_macro_rotator(2, 3)}) {
    const scg::DistanceOracle oracle = scg::DistanceOracle::build(net);
    std::mt19937_64 rng(17);
    std::uniform_int_distribution<std::uint64_t> pick(0, net.num_nodes() - 1);
    const int kQueries = 20000;
    std::uint64_t dist_sum = 0;
    const auto t0 = Clock::now();
    for (int q = 0; q < kQueries; ++q) {
      dist_sum += static_cast<std::uint64_t>(
          oracle.exact_distance(pick(rng), pick(rng)));
    }
    const double secs = seconds_since(t0);
    const double ns = secs / kQueries * 1e9;
    std::printf("%-20s %d random pairs: %8.0f ns/query (avg distance %.3f)\n",
                net.name.c_str(), kQueries, ns,
                static_cast<double>(dist_sum) / kQueries);
    json.row(kv("name", net.name) + ", " +
             kv("queries", static_cast<std::uint64_t>(kQueries)) + ", " +
             kv("ns_per_query", ns) + ", " +
             kv("avg_query_distance",
                static_cast<double>(dist_sum) / kQueries));
  }
  json.end_array();
}

void audit_section(Json& json) {
  std::printf("\n=== oracle-exact optimality audit of the game routers ===\n");
  json.begin_array("route_audit");
  for (const scg::NetworkSpec& net :
       {scg::make_star_graph(7), scg::make_macro_star(2, 3),
        scg::make_complete_rotation_star(3, 2), scg::make_macro_is(3, 2),
        scg::make_macro_rotator(3, 2)}) {
    const scg::DistanceOracle oracle = scg::DistanceOracle::build(net);
    const scg::OptimalityAudit a = scg::audit_route_optimality(net, oracle);
    const std::string check = scg::oracle_formula_crosscheck(net, oracle);
    std::printf("%-20s optimal=%5.1f%%  avg-stretch=%.3f  max-gap=%d hops  "
                "formula-check=%s\n",
                net.name.c_str(), 100.0 * a.optimal_fraction(), a.avg_stretch,
                a.max_gap, check.empty() ? "ok" : check.c_str());
    json.row(kv("name", net.name) + ", " + kv("sources", a.sources) + ", " +
             kv("optimal_fraction", a.optimal_fraction()) + ", " +
             kv("avg_stretch", a.avg_stretch) + ", " +
             kv("max_stretch", a.max_stretch) + ", " +
             kv("max_gap", static_cast<std::uint64_t>(a.max_gap)) + ", " +
             kv("formula_check", check.empty() ? std::string("ok") : check));
  }
  json.end_array();
}

void backup_section(Json& json) {
  std::printf("\n=== oracle-exact audit of FaultRouter backup paths ===\n");
  json.begin_array("backup_audit");
  for (const scg::NetworkSpec& net :
       {scg::make_macro_star(2, 2), scg::make_star_graph(5),
        scg::make_macro_is(2, 2)}) {
    const scg::DistanceOracle oracle = scg::DistanceOracle::build(net);
    const scg::BackupAudit a = scg::audit_backup_optimality(net, oracle, 24);
    std::printf("%-20s pairs=%-3llu paths=%-3llu avg-stretch=%.3f "
                "best-of-disjoint=%.3f worst=%.2f\n",
                net.name.c_str(), static_cast<unsigned long long>(a.pairs),
                static_cast<unsigned long long>(a.paths), a.avg_stretch,
                a.avg_best_stretch, a.max_stretch);
    json.row(kv("name", net.name) + ", " + kv("pairs", a.pairs) + ", " +
             kv("paths", a.paths) + ", " + kv("avg_stretch", a.avg_stretch) +
             ", " + kv("avg_best_stretch", a.avg_best_stretch) + ", " +
             kv("max_stretch", a.max_stretch));
  }
  json.end_array();
}

}  // namespace

int main(int argc, char** argv) {
  Json json;
  build_section(json);
  query_section(json);
  audit_section(json);
  backup_section(json);
  std::printf(
      "\nExpectation: table construction sustains well over 1M states/s,\n"
      "point queries are microsecond-scale, the exact diameters respect the\n"
      "paper's closed-form bounds, and the audits quantify exactly how far\n"
      "each game router is from optimal play.\n");
  if (argc > 1) json.finish(argv[1]);
  return 0;
}

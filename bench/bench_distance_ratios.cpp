// Theorems 4.5-4.7: diameter and average-distance to universal-lower-bound
// ratios at finite N for the six families the paper analyses.
#include <cstdio>

#include "analysis/bounds.hpp"
#include "topology/metrics.hpp"

namespace {

void report(const scg::NetworkSpec& net) {
  const scg::DistanceStats s = scg::network_distance_stats(net);
  const double n = static_cast<double>(net.num_nodes());
  const double dl = scg::universal_diameter_lower_bound(n, net.degree());
  const double al = scg::universal_average_distance_lower_bound(
      n, net.degree(), net.directed);
  std::printf("%-20s N=%-8.0f deg=%-3d diam=%-3d D_L=%-6.2f alpha=%-5.2f "
              "avg=%-6.2f avg_L=%-6.2f alpha_A=%.2f\n",
              net.name.c_str(), n, net.degree(), s.eccentricity, dl,
              dl > 0 ? s.eccentricity / dl : 0.0, s.average, al,
              al > 0 ? s.average / al : 0.0);
}

}  // namespace

int main() {
  std::printf("=== Theorems 4.5-4.7: distance optimality ratios ===\n");
  report(scg::make_star_graph(8));
  report(scg::make_macro_star(2, 3));
  report(scg::make_macro_star(2, 4));
  report(scg::make_macro_star(3, 3));
  report(scg::make_complete_rotation_star(2, 3));
  report(scg::make_complete_rotation_star(2, 4));
  report(scg::make_complete_rotation_star(3, 3));
  report(scg::make_macro_rotator(2, 3));
  report(scg::make_macro_rotator(2, 4));
  report(scg::make_macro_rotator(3, 3));
  report(scg::make_macro_is(2, 3));
  report(scg::make_macro_is(2, 4));
  report(scg::make_complete_rotation_rotator(2, 4));
  report(scg::make_complete_rotation_rotator(3, 3));
  report(scg::make_complete_rotation_is(2, 4));
  std::printf(
      "\nExpectation (paper): for balanced instances the rotator/IS-based\n"
      "families approach alpha = alpha_A = 1 and the star-based families\n"
      "approach 1.25 as N grows; at k <= 10 the o(1) terms still dominate,\n"
      "so ratios are ordered (rotator/IS < star-based < star) rather than\n"
      "converged.\n");
  return 0;
}

// Regenerates Figure 6: the degree x diameter cost measure vs log2(N).
#include <iostream>

#include "analysis/figures.hpp"

int main() {
  std::cout << "=== Figure 6: degree * diameter vs network size ===\n";
  scg::print_series(std::cout, scg::figure6_cost_series(true), "degree*diameter");
  std::cout << "\nExpectation (paper): super Cayley graphs are competitive\n"
               "with (and below) hypercubes and tori under this cost measure\n"
               "across the practical size range.\n";
  return 0;
}

// Theorems 4.1-4.3: for every enumerable instance, compare
//   (a) the theorem / algorithmic diameter upper bound,
//   (b) the worst-case step count of our game solver over ALL k! sources,
//   (c) the exact diameter measured by BFS.
// Invariant: (c) <= (b) <= (a).
#include <cstdio>
#include <vector>

#include "analysis/formulas.hpp"
#include "analysis/sweeps.hpp"
#include "topology/metrics.hpp"

namespace {

void report(const scg::NetworkSpec& net) {
  const int bound = scg::diameter_upper_bound(net.family, net.l, net.n);
  const scg::SolverSweep sweep = scg::sweep_all_sources(net);
  const scg::DistanceStats dist = scg::network_distance_stats(net);
  std::printf("%-20s N=%-8llu deg=%-3d bound=%-4d solver-worst=%-4d "
              "solver-avg=%-6.2f exact-diam=%-4d exact-avg=%.2f\n",
              net.name.c_str(),
              static_cast<unsigned long long>(net.num_nodes()), net.degree(),
              bound, sweep.max_steps, sweep.avg_steps, dist.eccentricity,
              dist.average);
}

}  // namespace

int main() {
  std::printf("=== Diameter bounds vs solver worst case vs exact (BFS) ===\n");
  std::printf("--- Theorem 4.2 (macro-star, Balls-to-Boxes bound) ---\n");
  report(scg::make_macro_star(2, 2));
  report(scg::make_macro_star(3, 2));
  report(scg::make_macro_star(2, 3));
  std::printf("--- Theorem 4.1 (complete rotation star) ---\n");
  report(scg::make_complete_rotation_star(2, 2));
  report(scg::make_complete_rotation_star(3, 2));
  report(scg::make_complete_rotation_star(2, 3));
  std::printf("--- Theorem 4.3 (rotator/IS-based, insertion solver) ---\n");
  report(scg::make_macro_rotator(2, 2));
  report(scg::make_macro_rotator(3, 2));
  report(scg::make_macro_rotator(2, 3));
  report(scg::make_macro_is(2, 2));
  report(scg::make_macro_is(3, 2));
  report(scg::make_complete_rotation_rotator(3, 2));
  report(scg::make_complete_rotation_is(3, 2));
  report(scg::make_rotation_rotator(3, 2));
  report(scg::make_rotation_is(3, 2));
  std::printf("--- baselines ---\n");
  report(scg::make_star_graph(7));
  report(scg::make_rotator_graph(7));
  report(scg::make_insertion_selection(7));
  std::printf("\nInvariant: exact-diam <= solver-worst <= bound for every row.\n");
  return 0;
}

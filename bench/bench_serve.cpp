// RouteService serving benchmark: thread-scaling under closed-loop load,
// the linger-vs-latency micro-batching trade-off, and graceful overload
// shedding.  Every cell re-verifies correctness (sampled words byte-equal
// to scalar route(), offered == delivered + shed exactly) so the emitted
// bench/baseline_serve.json gates invariants, not just rates, through
// scripts/compare_bench.py.
#include <cstdio>
#include <string>
#include <vector>

#include "json_out.hpp"
#include "networks/router.hpp"
#include "serve/batcher.hpp"
#include "serve/loadgen.hpp"
#include "sim/workloads.hpp"

namespace {

using benchjson::Json;
using benchjson::kv;

/// Sampled byte-identity check: every `stride`-th pair round-trips through
/// the live service and must match the scalar router exactly.
std::uint64_t words_match_scalar(scg::RouteService& svc,
                                 const std::vector<scg::TrafficPair>& pairs,
                                 std::size_t stride) {
  const scg::NetworkSpec& net = svc.spec();
  for (std::size_t i = 0; i < pairs.size(); i += stride) {
    const scg::RouteReply reply = svc.route(pairs[i].src, pairs[i].dst);
    if (reply.status != scg::ServeStatus::kOk) return 0;
    const std::vector<scg::Generator> want =
        scg::route(net, scg::Permutation::unrank(net.k(), pairs[i].src),
                   scg::Permutation::unrank(net.k(), pairs[i].dst));
    if (reply.word != want) return 0;
  }
  return 1;
}

std::uint64_t conserved(const scg::LoadGenReport& rep,
                        const scg::ServiceStatsSnapshot& snap) {
  const bool service_side =
      snap.offered == snap.completed_ok + snap.shed_load + snap.shed_rate +
                          snap.rejected_closed + snap.in_flight;
  return (rep.conserved() && service_side) ? 1 : 0;
}

}  // namespace

int main() {
  const scg::NetworkSpec net = scg::make_macro_star(2, 3);  // k=7, 5040 nodes
  const std::string family = "MS(2,3)";
  Json json;

  // -------------------------------------------------------------------
  // Thread scaling: closed loop, linger off, throughput bounded by the
  // workers' solve rate.  serve_rps is the regression-gated rate; each
  // workers cell gates against its own baseline, so the gate holds on any
  // core count (on a single-core runner the curve is flat-to-negative —
  // the sweep still proves each configuration serves correctly).
  // -------------------------------------------------------------------
  json.begin_array("thread_scaling");
  const std::vector<scg::TrafficPair> scaling_pairs =
      scg::random_traffic_pairs(net.num_nodes(), /*per_node=*/8, /*seed=*/11);
  for (const int workers : {1, 2, 4}) {
    scg::RouteServiceConfig cfg;
    cfg.workers = workers;
    cfg.max_batch = 128;
    cfg.linger_us = 0;
    // Cache off: every request pays a real solve, so the curve measures
    // worker scaling rather than the submit path.  Per-batch coalescing
    // still deduplicates translation-equivalent batchmates.
    cfg.engine.cache_capacity = 0;
    scg::RouteService svc(net, cfg);

    scg::LoadGenConfig lg;
    lg.mode = scg::LoadGenConfig::Mode::kClosed;
    lg.concurrency = 16;
    const scg::LoadGenReport rep = run_loadgen(svc, scaling_pairs, lg);
    const std::uint64_t words_ok = words_match_scalar(svc, scaling_pairs, 512);
    const scg::ServiceStatsSnapshot snap = svc.snapshot();

    json.row(kv("name", std::string("closed_loop")) + ", " +
             kv("family", family) + ", " +
             kv("mode", std::string("closed")) + ", " +
             kv("workers", static_cast<std::uint64_t>(workers)) + ", " +
             kv("concurrency", static_cast<std::uint64_t>(lg.concurrency)) +
             ", " + kv("offered", rep.offered) + ", " +
             kv("conservation", conserved(rep, snap)) + ", " +
             kv("words_ok", words_ok) + ", " +
             kv("serve_rps", rep.achieved_qps) + ", " +
             kv("p50_us", static_cast<double>(rep.latency.p50) / 1e3) + ", " +
             kv("p99_us", static_cast<double>(rep.latency.p99) / 1e3) + ", " +
             kv("p999_us", static_cast<double>(rep.latency.p999) / 1e3) +
             ", " + kv("occupancy_mean", snap.occupancy_mean) + ", " +
             kv("coalesced", snap.coalesced) + ", " +
             kv("cache_hit_rate", snap.cache_hit_rate()));
    std::printf("thread_scaling workers=%d: %.0f req/s  p99=%.0f us  "
                "occupancy=%.1f  conserved=%llu words_ok=%llu\n",
                workers, rep.achieved_qps,
                static_cast<double>(rep.latency.p99) / 1e3,
                snap.occupancy_mean,
                static_cast<unsigned long long>(conserved(rep, snap)),
                static_cast<unsigned long long>(words_ok));
  }
  json.end_array();

  // -------------------------------------------------------------------
  // Linger trade-off: open-loop Poisson arrivals at a fixed rate; a longer
  // linger builds bigger batches (higher occupancy, better coalescing) at
  // the price of added queueing latency.
  // -------------------------------------------------------------------
  json.begin_array("linger_tradeoff");
  const std::vector<scg::TrafficPair> linger_pairs =
      scg::random_traffic_pairs(net.num_nodes(), /*per_node=*/4, /*seed=*/23);
  for (const std::uint64_t linger_us : {0, 100, 1000}) {
    scg::RouteServiceConfig cfg;
    cfg.workers = 2;
    cfg.max_batch = 256;
    cfg.linger_us = linger_us;
    cfg.queue_capacity = 1 << 14;
    scg::RouteService svc(net, cfg);

    scg::LoadGenConfig lg;
    lg.mode = scg::LoadGenConfig::Mode::kOpen;
    lg.offered_qps = 40'000;
    lg.seed = 5;
    const scg::LoadGenReport rep = run_loadgen(svc, linger_pairs, lg);
    const scg::ServiceStatsSnapshot snap = svc.snapshot();

    json.row(kv("name", std::string("linger")) + ", " + kv("family", family) +
             ", " + kv("mode", std::string("open")) + ", " +
             kv("workers", std::uint64_t{2}) + ", " +
             kv("linger_us", linger_us) + ", " +
             kv("qps", std::uint64_t{40'000}) + ", " +
             kv("offered", rep.offered) + ", " +
             kv("conservation", conserved(rep, snap)) + ", " +
             kv("p50_us", static_cast<double>(rep.latency.p50) / 1e3) + ", " +
             kv("p99_us", static_cast<double>(rep.latency.p99) / 1e3) + ", " +
             kv("occupancy_mean", snap.occupancy_mean) + ", " +
             kv("coalesced", snap.coalesced) + ", " +
             kv("cache_hit_rate", snap.cache_hit_rate()));
    std::printf("linger_tradeoff linger=%llu us: p50=%.0f us  p99=%.0f us  "
                "occupancy=%.1f\n",
                static_cast<unsigned long long>(linger_us),
                static_cast<double>(rep.latency.p50) / 1e3,
                static_cast<double>(rep.latency.p99) / 1e3,
                snap.occupancy_mean);
  }
  json.end_array();

  // -------------------------------------------------------------------
  // Overload: offer 6x the admitted rate.  The service must shed the
  // excess explicitly (shed_nonzero), account for every request
  // (conservation), and keep the admitted tail bounded.
  // -------------------------------------------------------------------
  json.begin_array("overload_shedding");
  {
    scg::RouteServiceConfig cfg;
    cfg.workers = 2;
    cfg.max_batch = 128;
    cfg.linger_us = 100;
    cfg.admission.rate_limit_qps = 10'000;
    scg::RouteService svc(net, cfg);

    const std::vector<scg::TrafficPair> pairs =
        scg::random_traffic_pairs(net.num_nodes(), /*per_node=*/6, /*seed=*/31);
    scg::LoadGenConfig lg;
    lg.mode = scg::LoadGenConfig::Mode::kOpen;
    lg.offered_qps = 60'000;
    lg.seed = 9;
    const scg::LoadGenReport rep = run_loadgen(svc, pairs, lg);
    const scg::ServiceStatsSnapshot snap = svc.snapshot();
    const std::uint64_t shed_nonzero = rep.shed() > 0 ? 1 : 0;

    json.row(kv("name", std::string("overload")) + ", " +
             kv("family", family) + ", " + kv("mode", std::string("open")) +
             ", " + kv("workers", std::uint64_t{2}) + ", " +
             kv("qps", std::uint64_t{60'000}) + ", " +
             kv("rate_limit", std::uint64_t{10'000}) + ", " +
             kv("offered", rep.offered) + ", " +
             kv("conservation", conserved(rep, snap)) + ", " +
             kv("shed_nonzero", shed_nonzero) + ", " +
             kv("shed_fraction", snap.shed_fraction()) + ", " +
             kv("delivered_qps", rep.achieved_qps) + ", " +
             kv("admitted_p99_us",
                static_cast<double>(snap.total.percentile(99)) / 1e3));
    std::printf("overload_shedding: offered=%llu ok=%llu shed=%llu  "
                "admitted p99=%.0f us  conserved=%llu\n",
                static_cast<unsigned long long>(rep.offered),
                static_cast<unsigned long long>(rep.ok),
                static_cast<unsigned long long>(rep.shed()),
                static_cast<double>(snap.total.percentile(99)) / 1e3,
                static_cast<unsigned long long>(conserved(rep, snap)));
  }
  json.end_array();

  json.finish("bench/baseline_serve.json");
  return 0;
}

// Reproduces the paper's Figures 1-3: plays of the ball-arrangement game
// with l = 3 boxes of n = 2 balls (k = 7 symbols), rendered step by step.
//
//   Figure 1 — boxes moved by rotations, balls by transpositions; a play in
//              which ball 1 repeatedly surfaces as the outside ball.
//   Figure 2 — balls moved by insertions, boxes assigned colors 2,3,1
//              (cyclic offset 1), source 5342671.
//   Figure 3 — the same game with a better color assignment, showing the
//              reduction in steps.
#include <cstdio>

#include "core/bag.hpp"

namespace {

void show(const char* title, const scg::Permutation& start,
          const std::vector<scg::Generator>& word) {
  const scg::GameTrace trace = scg::make_trace(start, word);
  std::printf("%s\n", title);
  std::printf("%s", trace.render(3, 2).c_str());
  std::printf("solved in %d steps; final state %s\n\n", trace.steps(),
              trace.final_state().to_string().c_str());
}

}  // namespace

int main() {
  const int l = 3;
  const int n = 2;
  const scg::Permutation source = scg::Permutation::parse("5342671");

  // Figure 1: rotation boxes + transposition balls (complete-RS moves).
  show("=== Figure 1: boxes by rotation, balls by transposition ===", source,
       scg::solve_transposition_game(source, l, n,
                                     scg::BoxMoveStyle::kCompleteRotation));

  // Figure 2: insertion balls, fixed box colors 2,3,1 (offset 1).
  show("=== Figure 2: balls by insertion, boxes colored 2,3,1 ===", source,
       scg::solve_insertion_game_with_offset(
           source, l, n, scg::BoxMoveStyle::kCompleteRotation, 1));

  // Figure 3: insertion balls, best color assignment.
  show("=== Figure 3: balls by insertion, best color assignment ===", source,
       scg::solve_insertion_game(source, l, n,
                                 scg::BoxMoveStyle::kCompleteRotation));

  std::printf("The Figure 3 play uses a different box-color designation and\n"
              "needs no more steps than Figure 2's fixed assignment — the\n"
              "paper's point about the freedom of assigning colors.\n");
  return 0;
}

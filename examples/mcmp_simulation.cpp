// Runs a total-exchange on an MCMP-packaged super Cayley graph and on a
// hypercube of comparable size, printing per-network completion times —
// a miniature of the paper's Section 4.3 argument.
//
// The traffic flows through the unified event core: endpoint pairs only,
// routed lazily at injection time by a RoutePolicy picked from the registry
// ("game" on the Cayley spec, BFS on the hypercube), with the engine's
// telemetry printed per run.
#include <cstdio>

#include "networks/route_policy.hpp"
#include "sim/event_core.hpp"
#include "sim/workloads.hpp"
#include "topology/baselines.hpp"
#include "topology/metrics.hpp"

namespace {

void report(const scg::EventSimResult& r) {
  std::printf("  completion=%llu cycles, avg latency=%.1f, offchip hops=%llu\n",
              static_cast<unsigned long long>(r.completion_cycles),
              r.avg_latency, static_cast<unsigned long long>(r.offchip_hops));
  std::printf("  telemetry: %llu events, queue peak %llu, %llu route chunks, "
              "cache hit rate %.1f%%\n\n",
              static_cast<unsigned long long>(r.telemetry.events_processed),
              static_cast<unsigned long long>(r.telemetry.queue_peak),
              static_cast<unsigned long long>(r.telemetry.route_chunks),
              100.0 * r.telemetry.cache_hit_rate());
}

}  // namespace

int main() {
  std::printf("=== Total exchange on MCMPs (w = 1 pin budget per node) ===\n\n");

  {
    const scg::NetworkSpec net = scg::make_complete_rotation_star(2, 2);
    const scg::Graph g = scg::materialize(net);
    const auto policy = scg::make_route_policy("game", net);
    scg::EventSimConfig cfg;
    cfg.offchip_cycles_per_flit = net.intercluster_degree();  // w over d_I links
    const scg::EventSimResult r = scg::simulate_events(
        g, scg::mcmp_offchip_table(net, g),
        scg::total_exchange_pairs(net.num_nodes()), *policy, cfg);
    std::printf("%s: N=120, intercluster degree=%d, policy=%s\n",
                net.name.c_str(), net.intercluster_degree(),
                policy->name().c_str());
    report(r);
  }

  {
    const scg::Graph g = scg::make_hypercube(7);
    scg::BfsPolicy policy(g);
    scg::EventSimConfig cfg;
    cfg.offchip_cycles_per_flit = 7;  // one node per chip: w over log2 N links
    const scg::EventSimResult r = scg::simulate_events(
        g, scg::OffchipTable::uniform(g, true),
        scg::total_exchange_pairs(g.num_nodes()), policy, cfg);
    std::printf("hypercube(7): N=128, every link off-chip (degree 7), "
                "policy=%s\n", policy.name().c_str());
    report(r);
  }

  std::printf("The super Cayley MCMP finishes faster because its pin budget\n"
              "is split over far fewer off-chip links (paper Section 4.3).\n");
  return 0;
}

// Runs a total-exchange on an MCMP-packaged super Cayley graph and on a
// hypercube of comparable size, printing per-network completion times —
// a miniature of the paper's Section 4.3 argument.
#include <cstdio>

#include "sim/mcmp.hpp"
#include "sim/workloads.hpp"
#include "topology/baselines.hpp"
#include "topology/metrics.hpp"

int main() {
  std::printf("=== Total exchange on MCMPs (w = 1 pin budget per node) ===\n\n");

  {
    const scg::NetworkSpec net = scg::make_complete_rotation_star(2, 2);
    const scg::Graph g = scg::materialize(net);
    scg::SimConfig cfg;
    cfg.offchip_cycles = net.intercluster_degree();  // w split over d_I links
    const scg::SimResult r = scg::simulate_mcmp(
        g,
        [&](std::int32_t tag) {
          return !scg::is_nucleus(
              net.generators[static_cast<std::size_t>(tag)].kind);
        },
        scg::total_exchange_packets(net), cfg);
    std::printf("%s: N=120, intercluster degree=%d\n", net.name.c_str(),
                net.intercluster_degree());
    std::printf("  completion=%llu cycles, avg latency=%.1f, offchip hops=%llu\n\n",
                static_cast<unsigned long long>(r.completion_cycles),
                r.avg_latency, static_cast<unsigned long long>(r.offchip_hops));
  }

  {
    const scg::Graph g = scg::make_hypercube(7);
    scg::SimConfig cfg;
    cfg.offchip_cycles = 7;  // one node per chip: w split over log2 N links
    const scg::SimResult r = scg::simulate_mcmp(
        g, [](std::int32_t) { return true; }, scg::total_exchange_packets(g), cfg);
    std::printf("hypercube(7): N=128, every link off-chip (degree 7)\n");
    std::printf("  completion=%llu cycles, avg latency=%.1f, offchip hops=%llu\n",
                static_cast<unsigned long long>(r.completion_cycles),
                r.avg_latency, static_cast<unsigned long long>(r.offchip_hops));
  }

  std::printf("\nThe super Cayley MCMP finishes faster because its pin budget\n"
              "is split over far fewer off-chip links (paper Section 4.3).\n");
  return 0;
}

// Quickstart: build a super Cayley graph, route a packet by playing the
// ball-arrangement game, and measure the network's key properties.
#include <cstdio>

#include "analysis/bounds.hpp"
#include "networks/router.hpp"
#include "topology/metrics.hpp"

int main() {
  // A 2-level complete-rotation-star network on boxes of 2 balls:
  // k = 5 symbols, 5! = 120 nodes, degree 3 (T2, T3, R1).
  const scg::NetworkSpec net = scg::make_complete_rotation_star(2, 2);
  std::printf("network: %s  (k=%d, N=%llu, degree=%d, %s)\n", net.name.c_str(),
              net.k(), static_cast<unsigned long long>(net.num_nodes()),
              net.degree(), net.directed ? "directed" : "undirected");

  // Route between two nodes: solving the game = finding the path.
  const scg::Permutation from = scg::Permutation::parse("52341");
  const scg::Permutation to = scg::Permutation::identity(5);
  const std::vector<scg::Generator> word = scg::route(net, from, to);
  std::printf("route %s -> %s in %zu hops:", from.to_string().c_str(),
              to.to_string().c_str(), word.size());
  for (const scg::Generator& g : word) std::printf(" %s", g.name().c_str());
  std::printf("\n");
  const std::string err = scg::check_route(net, from, to, word);
  std::printf("route valid: %s\n", err.empty() ? "yes" : err.c_str());

  // Exact metrics by BFS (one BFS suffices: Cayley graphs are
  // vertex-symmetric).
  const scg::DistanceStats stats = scg::network_distance_stats(net);
  std::printf("diameter=%d  average distance=%.3f\n", stats.eccentricity,
              stats.average);
  std::printf("universal lower bound D_L(N,d)=%.3f -> ratio alpha=%.3f\n",
              scg::universal_diameter_lower_bound(120.0, net.degree()),
              scg::diameter_ratio(stats.eccentricity, 120.0, net.degree()));

  // Intercluster view (one nucleus per chip).
  const scg::DistanceStats ic = scg::intercluster_distance_stats(net);
  std::printf("intercluster degree=%d  intercluster diameter=%d  avg=%.3f\n",
              net.intercluster_degree(), ic.eccentricity, ic.average);
  return 0;
}

// Interactive-ish explorer: pass a family name and (l, n) and get the
// network's full property sheet.  Usage:
//   network_explorer [family] [l] [n]
// family in {MS, RS, cRS, MR, RR, cRR, IS, MIS, RIS, cRIS, star, rotator}
// Defaults to "cRS 3 2".
#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/bounds.hpp"
#include "analysis/formulas.hpp"
#include "networks/super_cayley.hpp"
#include "topology/metrics.hpp"

namespace {

scg::NetworkSpec make(const std::string& family, int l, int n) {
  if (family == "MS") return scg::make_macro_star(l, n);
  if (family == "RS") return scg::make_rotation_star(l, n);
  if (family == "cRS") return scg::make_complete_rotation_star(l, n);
  if (family == "MR") return scg::make_macro_rotator(l, n);
  if (family == "RR") return scg::make_rotation_rotator(l, n);
  if (family == "cRR") return scg::make_complete_rotation_rotator(l, n);
  if (family == "IS") return scg::make_insertion_selection(l * n + 1);
  if (family == "MIS") return scg::make_macro_is(l, n);
  if (family == "RIS") return scg::make_rotation_is(l, n);
  if (family == "cRIS") return scg::make_complete_rotation_is(l, n);
  if (family == "star") return scg::make_star_graph(l * n + 1);
  if (family == "rotator") return scg::make_rotator_graph(l * n + 1);
  std::fprintf(stderr, "unknown family '%s'\n", family.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string family = argc > 1 ? argv[1] : "cRS";
  const int l = argc > 2 ? std::atoi(argv[2]) : 3;
  const int n = argc > 3 ? std::atoi(argv[3]) : 2;

  const scg::NetworkSpec net = make(family, l, n);
  std::printf("=== %s ===\n", net.name.c_str());
  std::printf("symbols k           : %d\n", net.k());
  std::printf("nodes N = k!        : %llu\n",
              static_cast<unsigned long long>(net.num_nodes()));
  std::printf("directed            : %s\n", net.directed ? "yes" : "no");
  std::printf("degree              : %d\n", net.degree());
  std::printf("nucleus degree      : %d\n", net.nucleus_degree());
  std::printf("intercluster degree : %d\n", net.intercluster_degree());
  std::printf("cluster size (n+1)! : %llu\n",
              static_cast<unsigned long long>(net.cluster_size()));
  std::printf("generators          :");
  for (const scg::Generator& g : net.generators) {
    std::printf(" %s", g.name().c_str());
  }
  std::printf("\n");
  std::printf("diameter bound      : %d\n",
              scg::diameter_upper_bound(net.family, net.l, net.n));

  if (net.num_nodes() <= 4'000'000) {
    const scg::DistanceStats s = scg::network_distance_stats(net);
    std::printf("exact diameter      : %d\n", s.eccentricity);
    std::printf("exact avg distance  : %.3f\n", s.average);
    std::printf("alpha (D / D_L)     : %.3f\n",
                scg::diameter_ratio(s.eccentricity,
                                    static_cast<double>(net.num_nodes()),
                                    net.degree()));
    const scg::DistanceStats ic = scg::intercluster_distance_stats(net);
    std::printf("intercluster diam   : %d\n", ic.eccentricity);
    std::printf("intercluster avg    : %.3f\n", ic.average);
    std::printf("distance histogram  :");
    for (std::size_t d = 0; d < s.histogram.size(); ++d) {
      std::printf(" %llu", static_cast<unsigned long long>(s.histogram[d]));
    }
    std::printf("\n");
  } else {
    std::printf("(instance too large for exact BFS; bound shown above)\n");
  }
  return 0;
}

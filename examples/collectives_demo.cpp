// Demonstrates the collective-communication layer: broadcast and multinode
// broadcast on a super Cayley graph under both port models, next to their
// universal lower bounds (the paper's conclusions claims).
#include <cstdio>

#include "collectives/collectives.hpp"
#include "topology/metrics.hpp"

int main(int argc, char** argv) {
  const int l = argc > 1 ? std::atoi(argv[1]) : 2;
  const int n = argc > 2 ? std::atoi(argv[2]) : 2;
  const scg::NetworkSpec net = scg::make_complete_rotation_star(l, n);
  const scg::Graph g = scg::materialize(net);
  const scg::DistanceStats s = scg::network_distance_stats(net, false);
  const std::uint64_t root = scg::Permutation::identity(net.k()).rank();

  std::printf("network: %s (N=%llu, degree=%d, diameter=%d)\n\n",
              net.name.c_str(),
              static_cast<unsigned long long>(net.num_nodes()), net.degree(),
              s.eccentricity);

  const scg::CollectiveResult b1 = scg::broadcast_single_port(g, root);
  std::printf("broadcast, single-port: %d rounds (lower bound %d), %llu msgs\n",
              b1.rounds,
              scg::broadcast_single_port_lower_bound(g.num_nodes()),
              static_cast<unsigned long long>(b1.messages));

  const scg::CollectiveResult ba = scg::broadcast_all_port(g, root);
  std::printf("broadcast, all-port:    %d rounds (= diameter %d)\n", ba.rounds,
              s.eccentricity);

  const scg::CollectiveResult m1 = scg::mnb_single_port(g);
  std::printf("MNB, single-port:       %d rounds (lower bound %d)\n", m1.rounds,
              scg::mnb_single_port_lower_bound(g.num_nodes()));

  const scg::CollectiveResult ma = scg::mnb_all_port(g);
  std::printf("MNB, all-port:          %d rounds (lower bound %d)\n", ma.rounds,
              scg::mnb_all_port_lower_bound(g.num_nodes(), net.degree(),
                                            s.eccentricity));
  std::printf("\nEvery node now holds every other node's packet; the all-port\n"
              "round count sits within a small factor of the (N-1)/d\n"
              "bandwidth bound, as the paper claims asymptotically.\n");
  return 0;
}

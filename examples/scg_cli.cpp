// scg_cli — command-line front end to the library.
//
//   scg_cli info <family> <l> <n>                 property sheet
//   scg_cli route <family> <l> <n> <from> <to>    play the game between nodes
//   scg_cli trace <family> <l> <n> <from>         render the play to identity
//   scg_cli dot <family> <l> <n>                  Graphviz DOT on stdout
//   scg_cli histogram <family> <l> <n>            distance histogram (TSV)
//   scg_cli families                              list known family names
//   scg_cli oracle build <family> <l> <n> <out>   build + save exact-distance table
//   scg_cli oracle query <family> <l> <n> <table> <from> <to>
//                                                 exact distance + optimal word
//   scg_cli oracle stats <family> <l> <n> [table] exact diameter/average/histogram
//   scg_cli sim <family> <l> <n> [policy] [per_node] [seed]
//                                                 random traffic through the
//                                                 event core, routed lazily
//                                                 by the named policy
//   scg_cli chaos <family> <l> <n> [policy] [per_node] [seed]
//                                                 invariant-checked
//                                                 degradation sweep: fault
//                                                 kind x rate grid with
//                                                 audited delivered-fraction
//                                                 curves ("fault" reroutes,
//                                                 "adaptive" also quarantines
//                                                 sick links)
//   scg_cli serve-bench <family> <l> <n> [workers] [requests] [qps] [seed]
//                                                 drive the concurrent
//                                                 RouteService with random
//                                                 traffic (qps=0: closed
//                                                 loop; qps>0: open-loop
//                                                 Poisson arrivals), print
//                                                 the SLO snapshot, and
//                                                 verify sampled words
//                                                 against the scalar router
//   scg_cli kernels                               SIMD permutation-kernel
//                                                 dispatch tier + micro-timings
//                                                 with scalar identity check
//   scg_cli policies                              list registered route policies
//
// <family> ∈ {MS, RS, cRS, MR, RR, cRR, IS, MIS, RIS, cRIS, star, rotator,
//             pancake, bubble, transposition}; permutations are digit
//             strings like 5342671 (k <= 9).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include <numeric>
#include <random>
#include <vector>

#include "analysis/bounds.hpp"
#include "analysis/formulas.hpp"
#include "core/perm_kernels.hpp"
#include "chaos/adaptive_policy.hpp"
#include "chaos/campaign.hpp"
#include "networks/oracle_policy.hpp"
#include "networks/route_policy.hpp"
#include "networks/router.hpp"
#include "oracle/oracle.hpp"
#include "serve/batcher.hpp"
#include "serve/loadgen.hpp"
#include "sim/event_core.hpp"
#include "sim/workloads.hpp"
#include "topology/io.hpp"
#include "topology/metrics.hpp"

namespace {

scg::NetworkSpec make(const std::string& family, int l, int n) {
  const int k = l * n + 1;
  if (family == "MS") return scg::make_macro_star(l, n);
  if (family == "RS") return scg::make_rotation_star(l, n);
  if (family == "cRS") return scg::make_complete_rotation_star(l, n);
  if (family == "MR") return scg::make_macro_rotator(l, n);
  if (family == "RR") return scg::make_rotation_rotator(l, n);
  if (family == "cRR") return scg::make_complete_rotation_rotator(l, n);
  if (family == "IS") return scg::make_insertion_selection(k);
  if (family == "MIS") return scg::make_macro_is(l, n);
  if (family == "RIS") return scg::make_rotation_is(l, n);
  if (family == "cRIS") return scg::make_complete_rotation_is(l, n);
  if (family == "star") return scg::make_star_graph(k);
  if (family == "rotator") return scg::make_rotator_graph(k);
  if (family == "pancake") return scg::make_pancake_graph(k);
  if (family == "bubble") return scg::make_bubble_sort_graph(k);
  if (family == "transposition") return scg::make_transposition_network(k);
  std::fprintf(stderr, "unknown family '%s' (try: scg_cli families)\n",
               family.c_str());
  std::exit(2);
}

int cmd_info(const scg::NetworkSpec& net) {
  std::printf("%s: k=%d, N=%llu, degree=%d (%d nucleus + %d intercluster), %s\n",
              net.name.c_str(), net.k(),
              static_cast<unsigned long long>(net.num_nodes()), net.degree(),
              net.nucleus_degree(), net.intercluster_degree(),
              net.directed ? "directed" : "undirected");
  std::printf("generators:");
  for (const scg::Generator& g : net.generators) std::printf(" %s", g.name().c_str());
  std::printf("\ndiameter bound: %d\n", scg::diameter_upper_bound(net));
  if (net.num_nodes() <= 4'000'000) {
    const scg::DistanceStats s = scg::network_distance_stats(net);
    std::printf("exact diameter: %d   average distance: %.3f   alpha: %.3f\n",
                s.eccentricity, s.average,
                scg::diameter_ratio(s.eccentricity,
                                    static_cast<double>(net.num_nodes()),
                                    net.degree()));
  }
  return 0;
}

int cmd_route(const scg::NetworkSpec& net, const std::string& from_s,
              const std::string& to_s) {
  const scg::Permutation from = scg::Permutation::parse(from_s);
  const scg::Permutation to = scg::Permutation::parse(to_s);
  const auto word = scg::route(net, from, to);
  std::printf("%s -> %s in %zu hops:", from_s.c_str(), to_s.c_str(), word.size());
  for (const scg::Generator& g : word) std::printf(" %s", g.name().c_str());
  std::printf("\n");
  const std::string err = scg::check_route(net, from, to, word);
  if (!err.empty()) {
    std::fprintf(stderr, "internal error: %s\n", err.c_str());
    return 1;
  }
  return 0;
}

int cmd_trace(const scg::NetworkSpec& net, const std::string& from_s) {
  const scg::Permutation from = scg::Permutation::parse(from_s);
  const scg::GameTrace t =
      scg::route_trace(net, from, scg::Permutation::identity(net.k()));
  std::printf("%s", t.render(net.l, net.n).c_str());
  std::printf("solved in %d steps\n", t.steps());
  return 0;
}

void print_oracle_stats(const scg::DistanceOracle& oracle) {
  std::printf("states=%llu reachable=%llu exact-diameter=%d "
              "avg-distance=%.4f\n",
              static_cast<unsigned long long>(oracle.num_states()),
              static_cast<unsigned long long>(oracle.reachable_states()),
              oracle.diameter(), oracle.average_distance());
  scg::DistanceStats stats;
  stats.nodes = oracle.num_states();
  stats.reachable = oracle.reachable_states();
  stats.eccentricity = oracle.diameter();
  stats.average = oracle.average_distance();
  stats.histogram = oracle.histogram();
  scg::write_histogram_tsv(std::cout, stats);
}

int cmd_oracle(int argc, char** argv) {
  if (argc < 6) {
    std::fprintf(stderr,
                 "usage: scg_cli oracle build <family> <l> <n> <out>\n"
                 "       scg_cli oracle query <family> <l> <n> <table> <from> <to>\n"
                 "       scg_cli oracle stats <family> <l> <n> [table]\n");
    return 2;
  }
  const std::string sub = argv[2];
  const scg::NetworkSpec net = make(argv[3], std::atoi(argv[4]), std::atoi(argv[5]));
  if (sub == "build") {
    if (argc < 7) {
      std::fprintf(stderr, "usage: scg_cli oracle build <family> <l> <n> <out>\n");
      return 2;
    }
    const auto t0 = std::chrono::steady_clock::now();
    const scg::DistanceOracle oracle = scg::DistanceOracle::build(net);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    oracle.save(argv[6]);
    std::printf("%s: built %llu states in %.3fs (%.2fM states/s), wrote %s\n",
                net.name.c_str(),
                static_cast<unsigned long long>(oracle.num_states()), secs,
                static_cast<double>(oracle.num_states()) / secs / 1e6,
                argv[6]);
    std::printf("exact-diameter=%d avg-distance=%.4f\n", oracle.diameter(),
                oracle.average_distance());
    return 0;
  }
  if (sub == "query") {
    if (argc < 9) {
      std::fprintf(stderr,
                   "usage: scg_cli oracle query <family> <l> <n> <table> "
                   "<from> <to>\n");
      return 2;
    }
    const scg::DistanceOracle oracle = scg::DistanceOracle::load(argv[6], net);
    const scg::Permutation from = scg::Permutation::parse(argv[7]);
    const scg::Permutation to = scg::Permutation::parse(argv[8]);
    const int d = oracle.exact_distance(from, to);
    if (d < 0) {
      std::printf("%s -> %s: unreachable\n", argv[7], argv[8]);
      return 1;
    }
    const auto word = oracle.optimal_route(from, to);
    std::printf("%s -> %s: exact distance %d, optimal play:", argv[7],
                argv[8], d);
    for (const scg::Generator& g : word) std::printf(" %s", g.name().c_str());
    std::printf("\n");
    const std::string err = scg::check_route(net, from, to, word);
    if (!err.empty()) {
      std::fprintf(stderr, "internal error: %s\n", err.c_str());
      return 1;
    }
    const int game = scg::route_length(net, from, to);
    std::printf("game router: %d hops (gap %d)\n", game, game - d);
    return 0;
  }
  if (sub == "stats") {
    if (argc >= 7) {
      print_oracle_stats(scg::DistanceOracle::load(argv[6], net));
    } else {
      print_oracle_stats(scg::DistanceOracle::build(net));
    }
    return 0;
  }
  std::fprintf(stderr, "unknown oracle subcommand '%s'\n", sub.c_str());
  return 2;
}

int cmd_sim(const scg::NetworkSpec& net, const std::string& policy_name,
            int per_node, std::uint64_t seed) {
  const scg::Graph g = scg::materialize(net);
  const auto policy = scg::make_route_policy(policy_name, net);
  const auto pairs = scg::random_traffic_pairs(net.num_nodes(), per_node, seed);
  scg::EventSimConfig cfg;
  cfg.offchip_cycles_per_flit = std::max(1, net.intercluster_degree());
  const scg::EventSimResult r = scg::simulate_events(
      g, scg::mcmp_offchip_table(net, g), pairs, *policy, cfg);
  std::printf("%s: N=%llu, %d packets/node via '%s' (lazy, chunk %zu)\n",
              net.name.c_str(),
              static_cast<unsigned long long>(net.num_nodes()), per_node,
              policy->name().c_str(), cfg.route_chunk);
  std::printf("completion=%llu cycles  avg-latency=%.1f  total-hops=%llu  "
              "offchip-hops=%llu  max-link-busy=%.0f\n",
              static_cast<unsigned long long>(r.completion_cycles),
              r.avg_latency, static_cast<unsigned long long>(r.total_hops),
              static_cast<unsigned long long>(r.offchip_hops), r.max_link_busy);
  std::printf("telemetry: events=%llu queue-peak=%llu route-chunks=%llu "
              "cache-hit=%.1f%%\n",
              static_cast<unsigned long long>(r.telemetry.events_processed),
              static_cast<unsigned long long>(r.telemetry.queue_peak),
              static_cast<unsigned long long>(r.telemetry.route_chunks),
              100.0 * r.telemetry.cache_hit_rate());
  return 0;
}

int cmd_chaos(const scg::NetworkSpec& net, const std::string& policy_name,
              int per_node, std::uint64_t seed) {
  scg::CampaignConfig cfg;
  cfg.policy = policy_name;
  cfg.packets_per_node = per_node;
  cfg.seed = seed;
  const scg::CampaignResult r = scg::run_campaign({net}, cfg);
  std::printf("%s: %d packets/node, policy '%s' — degradation curves\n",
              net.name.c_str(), per_node, policy_name.c_str());
  std::printf("%-10s %5s %5s %9s %6s %6s %6s %6s %5s\n", "kind", "rate",
              "count", "delivered", "retx", "p99", "stretch", "quar",
              "audit");
  for (const scg::CampaignCell& c : r.cells) {
    std::printf("%-10s %5.2f %5d %9.4f %6llu %6llu %6.3f %6llu %5s\n",
                scg::fault_kind_name(c.kind), c.rate, c.count,
                c.result.delivered_fraction,
                static_cast<unsigned long long>(c.result.retransmissions),
                static_cast<unsigned long long>(c.result.p99_latency),
                c.result.avg_stretch,
                static_cast<unsigned long long>(c.quarantines),
                c.invariants.ok() ? "ok" : "FAIL");
  }
  std::printf("invariant checks: %llu violations across %zu cells\n",
              static_cast<unsigned long long>(r.total_violations),
              r.cells.size());
  return r.total_violations == 0 ? 0 : 1;
}

int cmd_serve_bench(const scg::NetworkSpec& net, int workers,
                    std::uint64_t requests, double qps, std::uint64_t seed) {
  scg::RouteServiceConfig cfg;
  cfg.workers = workers;
  scg::RouteService svc(net, cfg);

  const int per_node = std::max<int>(
      1, static_cast<int>(requests / net.num_nodes()));
  const auto pairs =
      scg::random_traffic_pairs(net.num_nodes(), per_node, seed);

  scg::LoadGenConfig lg;
  if (qps > 0) {
    lg.mode = scg::LoadGenConfig::Mode::kOpen;
    lg.offered_qps = qps;
  } else {
    lg.mode = scg::LoadGenConfig::Mode::kClosed;
    lg.concurrency = 2 * workers;
  }
  lg.seed = seed;
  const scg::LoadGenReport rep = run_loadgen(svc, pairs, lg);
  const scg::ServiceStatsSnapshot snap = svc.snapshot();

  std::printf("%s: %zu requests, %d workers, %s\n", net.name.c_str(),
              pairs.size(), svc.workers(),
              qps > 0 ? "open loop (Poisson)" : "closed loop");
  std::printf("throughput=%.0f req/s  ok=%llu shed=%llu closed=%llu\n",
              rep.achieved_qps, static_cast<unsigned long long>(rep.ok),
              static_cast<unsigned long long>(rep.shed()),
              static_cast<unsigned long long>(rep.closed));
  std::printf("client latency (us): p50=%.1f p99=%.1f p999=%.1f max=%.1f\n",
              static_cast<double>(rep.latency.p50) / 1e3,
              static_cast<double>(rep.latency.p99) / 1e3,
              static_cast<double>(rep.latency.p999) / 1e3,
              static_cast<double>(rep.latency.max) / 1e3);
  std::printf("snapshot: %s\n", snap.json().c_str());

  // Invariant 1: no silent loss, client- and service-side.
  const bool service_conserved =
      snap.offered == snap.completed_ok + snap.shed_load + snap.shed_rate +
                          snap.rejected_closed + snap.in_flight;
  if (!rep.conserved() || !service_conserved) {
    std::fprintf(stderr, "serve-bench: CONSERVATION VIOLATION\n");
    return 1;
  }
  // Invariant 2: sampled responses are byte-identical to the scalar router.
  const std::size_t stride = std::max<std::size_t>(1, pairs.size() / 64);
  for (std::size_t i = 0; i < pairs.size(); i += stride) {
    const scg::RouteReply reply = svc.route(pairs[i].src, pairs[i].dst);
    const auto want =
        scg::route(net, scg::Permutation::unrank(net.k(), pairs[i].src),
                   scg::Permutation::unrank(net.k(), pairs[i].dst));
    if (reply.status != scg::ServeStatus::kOk || reply.word != want) {
      std::fprintf(stderr, "serve-bench: WORD MISMATCH at pair %zu\n", i);
      return 1;
    }
  }
  std::printf("verified: conservation ok, sampled words match scalar "
              "route()\n");
  return 0;
}

// Report the permutation-kernel dispatch tier and quick per-primitive
// micro-timings with a byte-identity check against the scalar Permutation
// ops.  A smoke-level view of bench/bench_kernels (which writes the gated
// baseline); exits non-zero if any kernel output differs.
int cmd_kernels() {
  using scg::PermBlock;
  using scg::Permutation;
  std::printf("active tier: %s\nsupported:  ",
              scg::kernel_tier_name(scg::active_kernel_tier()));
  for (const scg::KernelTier t : scg::supported_kernel_tiers()) {
    std::printf(" %s", scg::kernel_tier_name(t));
  }
  std::printf("\n\n%4s  %-8s  %12s  %s\n", "k", "op", "kernel M/s",
              "identical");
  bool all_ok = true;
  for (const int k : {9, 13, 16, 20}) {
    std::mt19937_64 rng(0x5eedULL + static_cast<std::uint64_t>(k));
    constexpr std::size_t kBatch = 2048;
    std::vector<std::uint8_t> sym(static_cast<std::size_t>(k));
    std::vector<Permutation> as, bs;
    for (std::size_t i = 0; i < 2 * kBatch; ++i) {
      std::iota(sym.begin(), sym.end(), std::uint8_t{1});
      std::shuffle(sym.begin(), sym.end(), rng);
      (i < kBatch ? as : bs).push_back(Permutation::from_symbols(sym));
    }
    std::uniform_int_distribution<std::uint64_t> pick(0,
                                                      scg::factorial(k) - 1);
    std::vector<std::uint64_t> ranks(kBatch);
    for (std::uint64_t& r : ranks) r = pick(rng);
    PermBlock a, b, out;
    a.resize(k, kBatch);
    b.resize(k, kBatch);
    for (std::size_t i = 0; i < kBatch; ++i) {
      a.set(i, as[i]);
      b.set(i, bs[i]);
    }
    const auto report = [&](const char* op, auto&& kernel, auto&& check) {
      using Clock = std::chrono::steady_clock;
      kernel();  // warm up
      double best = 1e300;
      for (int trial = 0; trial < 4; ++trial) {
        const auto t0 = Clock::now();
        for (int rep = 0; rep < 4; ++rep) kernel();
        best = std::min(best,
                        std::chrono::duration<double>(Clock::now() - t0).count());
      }
      const bool ok = check();
      all_ok = all_ok && ok;
      std::printf("%4d  %-8s  %12.2f  %s\n", k, op,
                  static_cast<double>(4 * kBatch) / best / 1e6,
                  ok ? "yes" : "NO");
    };
    report(
        "compose", [&] { scg::perm_kernels::compose(a, b, out); },
        [&] {
          for (std::size_t i = 0; i < kBatch; ++i) {
            if (out.get(i) != as[i].compose_positions(bs[i])) return false;
          }
          return true;
        });
    report(
        "inverse", [&] { scg::perm_kernels::inverse(a, out); },
        [&] {
          for (std::size_t i = 0; i < kBatch; ++i) {
            if (out.get(i) != as[i].inverse()) return false;
          }
          return true;
        });
    report(
        "unrank", [&] { scg::perm_kernels::unrank(k, ranks, out); },
        [&] {
          for (std::size_t i = 0; i < kBatch; ++i) {
            if (out.get(i) != Permutation::unrank(k, ranks[i])) return false;
          }
          return true;
        });
    std::vector<std::uint64_t> got(kBatch);
    report(
        "rank", [&] { scg::perm_kernels::rank(a, got); },
        [&] {
          for (std::size_t i = 0; i < kBatch; ++i) {
            if (got[i] != as[i].rank()) return false;
          }
          return true;
        });
  }
  if (!all_ok) {
    std::fprintf(stderr, "FAIL: kernel output differs from scalar ops\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: scg_cli info|route|trace|dot|histogram|sim|chaos|"
                 "serve-bench|kernels|families|policies ...\n");
    return 2;
  }
  scg::register_oracle_policy();    // make "oracle" selectable by name
  scg::register_adaptive_policy();  // make "adaptive" selectable by name
  const std::string cmd = argv[1];
  if (cmd == "oracle") return cmd_oracle(argc, argv);
  if (cmd == "families") {
    std::printf("MS RS cRS MR RR cRR IS MIS RIS cRIS star rotator pancake "
                "bubble transposition\n");
    return 0;
  }
  if (cmd == "policies") {
    for (const std::string& name : scg::route_policy_names()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }
  if (cmd == "kernels") return cmd_kernels();
  if (argc < 5) {
    std::fprintf(stderr, "usage: scg_cli %s <family> <l> <n> ...\n", cmd.c_str());
    return 2;
  }
  const scg::NetworkSpec net = make(argv[2], std::atoi(argv[3]), std::atoi(argv[4]));
  if (cmd == "info") return cmd_info(net);
  if (cmd == "route") {
    if (argc < 7) {
      std::fprintf(stderr, "usage: scg_cli route <family> <l> <n> <from> <to>\n");
      return 2;
    }
    return cmd_route(net, argv[5], argv[6]);
  }
  if (cmd == "trace") {
    if (argc < 6) {
      std::fprintf(stderr, "usage: scg_cli trace <family> <l> <n> <from>\n");
      return 2;
    }
    return cmd_trace(net, argv[5]);
  }
  if (cmd == "dot") {
    if (net.num_nodes() > 50000) {
      std::fprintf(stderr, "refusing to dump %llu nodes as DOT\n",
                   static_cast<unsigned long long>(net.num_nodes()));
      return 1;
    }
    scg::write_cayley_dot(std::cout, net);
    return 0;
  }
  if (cmd == "histogram") {
    scg::write_histogram_tsv(std::cout, scg::network_distance_stats(net));
    return 0;
  }
  if (cmd == "sim") {
    const std::string policy = argc > 5 ? argv[5] : "game";
    const int per_node = argc > 6 ? std::atoi(argv[6]) : 8;
    const std::uint64_t seed =
        argc > 7 ? std::strtoull(argv[7], nullptr, 10) : 7;
    return cmd_sim(net, policy, per_node, seed);
  }
  if (cmd == "chaos") {
    const std::string policy = argc > 5 ? argv[5] : "fault";
    const int per_node = argc > 6 ? std::atoi(argv[6]) : 4;
    const std::uint64_t seed =
        argc > 7 ? std::strtoull(argv[7], nullptr, 10) : 7;
    return cmd_chaos(net, policy, per_node, seed);
  }
  if (cmd == "serve-bench") {
    const int workers = argc > 5 ? std::atoi(argv[5]) : 2;
    const std::uint64_t requests =
        argc > 6 ? std::strtoull(argv[6], nullptr, 10) : 10000;
    const double qps = argc > 7 ? std::atof(argv[7]) : 0;
    const std::uint64_t seed =
        argc > 8 ? std::strtoull(argv[8], nullptr, 10) : 7;
    return cmd_serve_bench(net, workers, requests, qps, seed);
  }
  std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
  return 2;
}

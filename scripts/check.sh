#!/usr/bin/env bash
# Tier-1 verification plus a sanitizer pass:
#   1. default build + full ctest (the tier-1 gate);
#   2. ASan+UBSan build + the fast-labelled tests (large sweeps excluded —
#      run `ctest --preset asan-fast` with no label filter to widen).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: default build =="
cmake --preset default
cmake --build --preset default -j"$(nproc)"
ctest --preset default -j"$(nproc)"

echo "== oracle smoke: build + reload a tiny exact-distance table =="
oracle_table="$(mktemp /tmp/scg-oracle.XXXXXX)"
./build/examples/scg_cli oracle build MS 2 2 "$oracle_table"
./build/examples/scg_cli oracle query MS 2 2 "$oracle_table" 53421 12345
rm -f "$oracle_table"

echo "== sanitizers: asan+ubsan build, fast tests =="
cmake --preset asan
cmake --build --preset asan -j"$(nproc)"
ctest --preset asan-fast -j"$(nproc)"

echo "== all checks passed =="

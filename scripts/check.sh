#!/usr/bin/env bash
# Tier-1 verification plus sanitizer passes:
#   1. default build + full ctest (the tier-1 gate);
#   2. ASan+UBSan build + the fast-labelled tests (large sweeps excluded —
#      run `ctest --preset asan-fast` with no label filter to widen);
#   3. standalone UBSan build of the kernel-heavy suites (permutation,
#      SIMD perm kernels, route engine, oracle), run directly;
#   4. TSan build of the concurrency-heavy suites (ThreadPool, event-core
#      lazy routing, chaos campaign), run directly;
#   5. static analysis, when the tools are installed: a clang build with
#      -Werror=thread-safety (plus the negative-compilation tests proving
#      the annotations bite), the clang-tidy gate, and shellcheck over
#      scripts/.  Each step degrades to a skip message where the tool is
#      absent — CI's static-analysis job is the enforcing run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: default build =="
cmake --preset default
cmake --build --preset default -j"$(nproc)"
ctest --preset default -j"$(nproc)"

echo "== oracle smoke: build + reload a tiny exact-distance table =="
oracle_table="$(mktemp /tmp/scg-oracle.XXXXXX)"
./build/examples/scg_cli oracle build MS 2 2 "$oracle_table"
./build/examples/scg_cli oracle query MS 2 2 "$oracle_table" 53421 12345
rm -f "$oracle_table"

echo "== routing benches: correctness report + engine throughput gate =="
./build/bench/bench_routing
# bench_engine writes bench/baseline_engine.json relative to its cwd; run
# it in a scratch dir so the committed baseline is never clobbered, then
# gate the fresh numbers against it.  Tolerance is loose (0.5) because the
# committed baseline comes from a different machine — the gate catches
# broken invariants and order-of-magnitude regressions, not jitter.
engine_dir="$(mktemp -d /tmp/scg-engine.XXXXXX)"
mkdir -p "$engine_dir/bench"
repo_root="$PWD"
(cd "$engine_dir" && "$repo_root/build/bench/bench_engine")
python3 scripts/compare_bench.py bench/baseline_engine.json \
  "$engine_dir/bench/baseline_engine.json" --tolerance 0.5
rm -rf "$engine_dir"

echo "== kernel microbench: SIMD tier identity + speedup gate =="
# bench_kernels exits non-zero if any SIMD tier output differs from the
# scalar reference; the JSON gate pins the byte-identity flags exactly and
# the speedup/rate fields loosely (the committed baseline's dispatch tier is
# stamped in its "meta" object).
kern_dir="$(mktemp -d /tmp/scg-kern.XXXXXX)"
mkdir -p "$kern_dir/bench"
(cd "$kern_dir" && "$repo_root/build/bench/bench_kernels")
python3 scripts/compare_bench.py bench/baseline_kernels.json \
  "$kern_dir/bench/baseline_kernels.json" --tolerance 0.5
rm -rf "$kern_dir"

echo "== kernels smoke: dispatch tier report + scalar identity check =="
./build/examples/scg_cli kernels

echo "== simulation bench: event-core invariants + lazy-routing gate =="
# Same scratch-dir pattern: bench_mcmp re-simulates every workload and the
# lazy-vs-prerouted acceptance run; completion cycles / hop counts /
# sim_identical must match the committed baseline exactly, lazy_speedup and
# sim_rps only loosely (machine speed).
sim_dir="$(mktemp -d /tmp/scg-sim.XXXXXX)"
mkdir -p "$sim_dir/bench"
(cd "$sim_dir" && "$repo_root/build/bench/bench_mcmp")
python3 scripts/compare_bench.py bench/baseline_sim.json \
  "$sim_dir/bench/baseline_sim.json" --tolerance 0.5
rm -rf "$sim_dir"

echo "== chaos campaign: invariant-audited degradation gate =="
# bench_chaos exits non-zero on any invariant violation or a transient
# full-repair cell that misses the fault-free delivered fraction; the JSON
# gate then pins the integer degradation surface (delivered / timeouts /
# retransmissions / completion cycles per cell) to the committed baseline.
chaos_dir="$(mktemp -d /tmp/scg-chaos.XXXXXX)"
mkdir -p "$chaos_dir/bench"
(cd "$chaos_dir" && "$repo_root/build/bench/bench_chaos" bench/baseline_chaos.json)
python3 scripts/compare_bench.py bench/baseline_chaos.json \
  "$chaos_dir/bench/baseline_chaos.json" --tolerance 0.5
rm -rf "$chaos_dir"

echo "== serve smoke: concurrent RouteService, verified words =="
# Small family, 2 workers; serve-bench exits non-zero on a conservation or
# word-identity violation.
./build/examples/scg_cli serve-bench MS 2 2 2 500

echo "== serving bench: SLO telemetry + shedding gate =="
# Same scratch-dir pattern as the other gates: conservation / words_ok /
# shed_nonzero must hold exactly, serve_rps only loosely (machine speed).
serve_dir="$(mktemp -d /tmp/scg-serve.XXXXXX)"
mkdir -p "$serve_dir/bench"
(cd "$serve_dir" && "$repo_root/build/bench/bench_serve")
python3 scripts/compare_bench.py bench/baseline_serve.json \
  "$serve_dir/bench/baseline_serve.json" --tolerance 0.5
rm -rf "$serve_dir"

echo "== sanitizers: asan+ubsan build, fast tests =="
cmake --preset asan
cmake --build --preset asan -j"$(nproc)"
ctest --preset asan-fast -j"$(nproc)"

echo "== sanitizers: standalone ubsan build, kernel-heavy suites =="
# The SIMD kernels and their consumers lean on pointer casts, target-gated
# intrinsics, and reciprocal arithmetic; run those suites under pure UBSan
# (no ASan redzones, so the vector loads/stores run at full width).
cmake --preset ubsan
cmake --build --preset ubsan -j"$(nproc)"
./build-ubsan/tests/permutation_test
./build-ubsan/tests/perm_kernels_test
./build-ubsan/tests/route_engine_test
./build-ubsan/tests/oracle_test

echo "== sanitizers: tsan build, concurrency suites =="
# ThreadPool, the event core's lazy routing, the chaos campaign, and the
# serving layer are the threaded / observer-callback-heavy surfaces; run
# their suites under TSan.
cmake --preset tsan
cmake --build --preset tsan -j"$(nproc)"
./build-tsan/tests/parallel_test
./build-tsan/tests/event_core_test
./build-tsan/tests/chaos_test
./build-tsan/tests/serve_test

echo "== static analysis: clang thread-safety build =="
if command -v clang++ >/dev/null 2>&1; then
  cmake --preset clang
  cmake --build --preset clang -j"$(nproc)"
  ctest --preset clang-fast -j"$(nproc)"
else
  echo "clang++ not found; skipping (the CI static-analysis job enforces it)"
fi

echo "== static analysis: clang-tidy gate =="
scripts/run_tidy.sh

echo "== static analysis: shellcheck =="
if command -v shellcheck >/dev/null 2>&1; then
  shellcheck scripts/*.sh
else
  echo "shellcheck not found; skipping (the CI static-analysis job enforces it)"
fi

echo "== all checks passed =="

#!/usr/bin/env bash
# Tier-1 verification plus a sanitizer pass:
#   1. default build + full ctest (the tier-1 gate);
#   2. ASan+UBSan build + the fast-labelled tests (large sweeps excluded —
#      run `ctest --preset asan-fast` with no label filter to widen).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: default build =="
cmake --preset default
cmake --build --preset default -j"$(nproc)"
ctest --preset default -j"$(nproc)"

echo "== sanitizers: asan+ubsan build, fast tests =="
cmake --preset asan
cmake --build --preset asan -j"$(nproc)"
ctest --preset asan-fast -j"$(nproc)"

echo "== all checks passed =="

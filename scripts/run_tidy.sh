#!/usr/bin/env bash
# clang-tidy gate over the library + tool sources, driven by the clang
# preset's compile-commands database (so every TU is analysed with exactly
# the flags it builds with).  The enforced-error set lives in .clang-tidy
# (WarningsAsErrors); everything else prints as advisory warnings.
#
# Usage: scripts/run_tidy.sh [build-dir]   (default: build-clang)
set -euo pipefail
cd "$(dirname "$0")/.."

build_dir="${1:-build-clang}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_tidy.sh: clang-tidy not found; skipping (the CI static-analysis job enforces it)"
  exit 0
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run_tidy.sh: $build_dir/compile_commands.json missing" >&2
  echo "run_tidy.sh: configure first: cmake --preset clang" >&2
  exit 1
fi

# Analyse first-party TUs only: src/, examples/, bench/ — not _deps/ or
# generated sources.
mapfile -t files < <(python3 - "$build_dir/compile_commands.json" <<'EOF'
import json
import os
import sys

repo = os.getcwd()
first_party = tuple(os.path.join(repo, d) + os.sep
                    for d in ("src", "examples", "bench", "tests"))
seen = set()
for entry in json.load(open(sys.argv[1])):
    f = os.path.normpath(os.path.join(entry["directory"], entry["file"]))
    if f.startswith(first_party) and f not in seen:
        seen.add(f)
        print(f)
EOF
)

if [ "${#files[@]}" -eq 0 ]; then
  echo "run_tidy.sh: no first-party TUs found in $build_dir/compile_commands.json" >&2
  exit 1
fi

echo "run_tidy.sh: analysing ${#files[@]} TUs with $(clang-tidy --version | head -n1)"
printf '%s\n' "${files[@]}" |
  xargs -P "$(nproc)" -n 4 clang-tidy -p "$build_dir" --quiet
echo "run_tidy.sh: clean"

#!/usr/bin/env python3
"""Compare a freshly generated bench JSON against a committed baseline.

Usage:
    compare_bench.py BASELINE FRESH [--tolerance 0.5]

Both files are objects of named arrays of flat rows (the bench/json_out.hpp
format, e.g. bench/baseline_engine.json).  Rows are matched by their
identity fields (name / workload / k / pairs / flows / threads).  Two kinds
of checks run on every matched row:

  * Invariants must be byte-equal: correctness flags (hops_agree,
    paths_identical, sim_identical) and deterministic outputs (total_hops,
    completion_cycles, packets).  These depend only on the seeded
    workload, never on machine speed.
  * Rates (fields ending in _rps or _speedup) must not regress:
    fresh >= tolerance * baseline.  The default tolerance is deliberately
    loose because CI hardware differs from the machine that wrote the
    baseline; the gate exists to catch order-of-magnitude regressions and
    broken correctness flags, not 10% jitter.

Rows present only in the fresh file are ignored (new benches may land
before their baseline is regenerated); rows present only in the baseline
fail, since silently dropping a measurement is how regressions hide.

Exits 0 when everything passes, 1 with a per-row report otherwise.
"""

import argparse
import json
import sys

IDENTITY_FIELDS = ("name", "workload", "policy", "k", "pairs", "flows",
                   "threads", "link_kills", "links_failed",
                   "family", "kind", "rate", "outages", "slow_links",
                   # Serving cells (bench/baseline_serve.json).
                   "workers", "mode", "linger_us", "offered", "concurrency",
                   "qps", "rate_limit")
INVARIANT_FIELDS = {
    "hops_agree",
    "paths_identical",
    "sim_identical",
    "total_hops",
    "completion_cycles",
    "packets",
    # cache_hits is deliberately absent: concurrent chunks can both miss
    # the same relative permutation, so the hit count varies with the
    # machine's core count.
    # Chaos campaign cells (bench/baseline_chaos.json): the single-threaded
    # event core is fully seeded, so every integer counter in the
    # degradation surface is deterministic.  Floats (delivered_fraction,
    # latency averages) are deliberately excluded — cross-compiler printf
    # formatting of doubles is not part of the contract.
    "count",
    "delivered",
    "dropped",
    "timeouts",
    "retransmissions",
    "truncated",
    "violations",
    "checks",
    "fully_repaired",
    "exact_match",
    "fault_free_delivered",
    "quarantines",
    "readmissions",
    # Serving invariants: offered == delivered + shed (conservation),
    # sampled words byte-equal to scalar route() (words_ok), and the
    # overload cell really shed (shed_nonzero).  All three are pass/fail
    # flags computed by bench_serve itself, independent of machine speed.
    "conservation",
    "words_ok",
    "shed_nonzero",
    # Kernel microbenches (bench/baseline_kernels.json): every SIMD tier
    # must be byte-identical to the scalar reference on the bench inputs.
    # The dispatch tier itself is stamped into the "meta" object (skipped
    # below), not a row field — tiers differ across machines by design.
    "identical",
}


def structure_error(label, path, data):
    """One-line description of the first structural problem, or None.

    The expected shape is an object of named row arrays (plus free-form
    non-array sections such as "meta").  Anything else used to surface as
    an AttributeError traceback deep inside compare(); name the offending
    file instead.
    """
    if not isinstance(data, dict):
        return (f"compare_bench: {label} file '{path}' is malformed: top "
                f"level is {type(data).__name__}, expected an object of "
                f"row arrays")
    for section, rows in data.items():
        if not isinstance(rows, list):
            continue  # meta-style sections are fine; compare() skips them
        for i, row in enumerate(rows):
            if not isinstance(row, dict):
                return (f"compare_bench: {label} file '{path}' is "
                        f"malformed: {section}[{i}] is "
                        f"{type(row).__name__}, expected an object")
    return None


def row_key(row):
    return tuple((f, row[f]) for f in IDENTITY_FIELDS if f in row)


def fmt_key(section, key):
    ident = ", ".join(f"{f}={v}" for f, v in key)
    return f"{section}[{ident}]"


def compare(baseline, fresh, tolerance):
    failures = []
    for section, base_rows in baseline.items():
        # Skip non-array sections ("meta") BEFORE keying the fresh side:
        # iterating a fresh dict here yields its keys, and a key containing
        # an identity field as a substring (e.g. the "k" in "kernel_tier")
        # used to crash row_key with a string-index TypeError.
        if not isinstance(base_rows, list):
            continue
        fresh_section = fresh.get(section, [])
        if not isinstance(fresh_section, list):
            failures.append(
                f"{section}: fresh section is "
                f"{type(fresh_section).__name__}, expected an array")
            continue
        fresh_rows = {row_key(r): r for r in fresh_section}
        for base_row in base_rows:
            key = row_key(base_row)
            where = fmt_key(section, key)
            fresh_row = fresh_rows.get(key)
            if fresh_row is None:
                failures.append(f"{where}: missing from fresh results")
                continue
            for field, base_val in base_row.items():
                if field not in fresh_row:
                    failures.append(f"{where}.{field}: field missing")
                    continue
                fresh_val = fresh_row[field]
                if field in INVARIANT_FIELDS:
                    if fresh_val != base_val:
                        failures.append(
                            f"{where}.{field}: {fresh_val} != baseline "
                            f"{base_val} (must be identical)")
                elif field.endswith("_rps") or field.endswith("_speedup"):
                    if fresh_val < tolerance * base_val:
                        failures.append(
                            f"{where}.{field}: {fresh_val:.3g} < "
                            f"{tolerance:g} x baseline {base_val:.3g}")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--tolerance", type=float, default=0.5,
                        help="minimum fresh/baseline ratio for rate fields "
                             "(default %(default)s)")
    args = parser.parse_args()

    # A missing file means the gate never ran — fail loudly instead of
    # tracebacking (or worse, "passing" an empty comparison).
    for label, path in (("baseline", args.baseline), ("fresh", args.fresh)):
        try:
            with open(path) as f:
                data = json.load(f)
        except FileNotFoundError:
            print(f"compare_bench: {label} file '{path}' does not exist; "
                  f"regenerate it (run the bench binary) before gating")
            return 1
        except json.JSONDecodeError as e:
            print(f"compare_bench: {label} file '{path}' is not valid "
                  f"JSON: {e}")
            return 1
        error = structure_error(label, path, data)
        if error is not None:
            print(error)
            return 1
        if label == "baseline":
            baseline = data
        else:
            fresh = data

    failures = compare(baseline, fresh, args.tolerance)
    if failures:
        print(f"compare_bench: {len(failures)} regression(s) vs "
              f"{args.baseline}:")
        for line in failures:
            print(f"  {line}")
        return 1
    print(f"compare_bench: {args.fresh} is within tolerance "
          f"{args.tolerance:g} of {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
